"""The PDW scheduling ILP — Eqs. (1)-(26) over re-timed task variables.

Decision variables
------------------
* one integer start per baseline task (operations keep their durations,
  Eq. 1; precedences follow Eqs. 2, 4, 5),
* one integer start per wash operation plus one binary per candidate wash
  path (the selected candidate determines the wash duration via Eq. 17 and
  its contribution to :math:`L_{wash}`, Eq. 25),
* ordering binaries for wash/task and wash/wash node conflicts
  (Eqs. 19, 20),
* integration binaries :math:`\\psi` folding an excess-removal task into a
  wash whose path covers it (Eqs. 7, 21).

Relative order among *baseline* tasks that share chip nodes is kept as in
the baseline schedule (the paper's monolithic model also re-orders them;
fixing the order is the decomposition that keeps the model tractable — see
DESIGN.md).  Everything may shift in time, so wash windows (Eq. 16) are
enforced against task variables and the model is always feasible: a tight
window simply delays the blocking task.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.core.config import PDWConfig
from repro.core.targets import WashCluster
from repro.errors import InfeasibleError, SolverError, UnboundedError, WashError
from repro.ilp import (
    LinExpr,
    Model,
    RungAttempt,
    Solution,
    SolverPortfolio,
    SolveStatus,
    Variable,
)
from repro.obs.trace import span
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind


@dataclass
class IlpWashOutcome:
    """Raw solver outcome, consumed by the PDW orchestrator."""

    status: SolveStatus
    objective: float
    solve_time_s: float
    starts: Dict[str, int]
    wash_starts: Dict[str, int]
    wash_paths: Dict[str, FlowPath]
    wash_durations: Dict[str, int]
    absorbed: Dict[str, str] = field(default_factory=dict)  # removal id -> cluster id
    model_stats: str = ""
    mip_gap: Optional[float] = None
    n_variables: int = 0
    n_binaries: int = 0
    n_constraints: int = 0
    rung: str = "highs"
    attempts: Tuple[RungAttempt, ...] = ()
    build_time_s: float = 0.0
    #: How the portfolio executed: ``"ladder"`` (serial) or ``"race"``.
    solver_mode: str = "ladder"
    #: Wall-clock of the whole rung race (0.0 for ladder runs).
    race_wall_s: float = 0.0
    #: Whether a cached incumbent primed the solve (incremental re-solve).
    warm_started: bool = False
    #: Whether the built model was reused from the in-process memo.
    model_reused: bool = False


class WashScheduleIlp:
    """Builds and solves the PDW scheduling model."""

    def __init__(
        self,
        chip: Chip,
        baseline: Schedule,
        clusters: Sequence[WashCluster],
        candidates: Dict[str, List[FlowPath]],
        config: Optional[PDWConfig] = None,
    ):
        self.chip = chip
        self.baseline = baseline
        self.clusters = list(clusters)
        self.candidates = candidates
        self.config = config if config is not None else PDWConfig()
        for cluster in self.clusters:
            if not candidates.get(cluster.id):
                raise WashError(f"cluster {cluster.id!r} has no candidate paths")

        self.tasks: List[ScheduledTask] = self.baseline.tasks()
        self.horizon = self._horizon()
        self.model = Model("pdw-schedule", big_m=float(self.horizon))
        self._t: Dict[str, Variable] = {}
        self._wash_t: Dict[str, Variable] = {}
        self._x: Dict[Tuple[str, int], Variable] = {}
        self._psi: Dict[Tuple[str, str], Variable] = {}
        self._psi_sum: Dict[str, LinExpr] = {}
        #: Per-cluster wash-duration rows ``[(x_i, wash_time_i), ...]`` —
        #: the coefficient form of :meth:`_wash_duration`, reused by every
        #: batch constraint that mentions the selected wash duration.
        self._wash_dur_terms: Dict[str, List[Tuple[Variable, float]]] = {}
        self.build_time_s: float = 0.0
        #: Solution of the most recent :meth:`solve`, kept so callers can
        #: bank it as a warm-start incumbent for structural twins.
        self.last_solution: Optional[Solution] = None

    # -- model assembly ---------------------------------------------------------

    def _horizon(self) -> int:
        wash_worst = sum(
            max(self.chip.wash_time_s(p) for p in self.candidates[c.id])
            for c in self.clusters
        )
        return self.baseline.makespan + wash_worst + 10

    def _duration_expr(self, task: ScheduledTask) -> LinExpr:
        """Effective duration: removals shrink to zero when absorbed (Eq. 7)."""
        base = LinExpr({}, float(task.duration))
        psi = self._psi_sum.get(task.id)
        if psi is not None:
            return base - task.duration * psi
        return base

    def _end_expr(self, task: ScheduledTask) -> LinExpr:
        """Reference form of ``end(task)``; the hot loops use the batch
        coefficient rows of :meth:`_add_ge_end`, which mirror it exactly."""
        return LinExpr.from_any(self._t[task.id]) + self._duration_expr(task)

    def _add_ge_end(
        self,
        var: Variable,
        task: ScheduledTask,
        name: str,
        extra: Sequence[Tuple[Variable, float]] = (),
        rhs_shift: float = 0.0,
    ) -> None:
        """Batch row for ``var >= end(task) [+ extra terms + rhs_shift]``.

        With ``end(task) = t + d - d*sum(psi)`` (Eq. 7 absorption) the row
        is ``var - t + d*sum(psi) + extra >= d + rhs_shift`` — identical to
        what ``var >= self._end_expr(task) - ...`` builds through operators,
        minus the intermediate LinExpr allocations.
        """
        d = float(task.duration)
        coeffs: List[Tuple[Variable, float]] = [(var, 1.0), (self._t[task.id], -1.0)]
        psi = self._psi_sum.get(task.id)
        if psi is not None:
            coeffs.extend((p, d * c) for p, c in psi.terms.items())
        coeffs.extend(extra)
        self.model.add_linear_constraint(coeffs, ">=", d + rhs_shift, name)

    def build(self) -> None:
        """Assemble all variables and constraints."""
        m = self.model
        for task in self.tasks:
            # Washes may only delay the assay, never re-pack it tighter
            # than the baseline, so each task keeps its baseline start as
            # a lower bound (this also guarantees T_delay >= 0).
            self._t[task.id] = m.add_integer_var(
                f"t[{task.id}]", task.start, self.horizon
            )
        for cluster in self.clusters:
            self._wash_t[cluster.id] = m.add_integer_var(
                f"tw[{cluster.id}]", 0, self.horizon
            )
            cands = self.candidates[cluster.id]
            xs = [m.add_binary_var(f"x[{cluster.id},{i}]") for i in range(len(cands))]
            for i, x in enumerate(xs):
                self._x[(cluster.id, i)] = x
            self._wash_dur_terms[cluster.id] = [
                (x, float(self.chip.wash_time_s(cand))) for x, cand in zip(xs, cands)
            ]
            m.add_linear_constraint([(x, 1.0) for x in xs], "==", 1.0, f"one_path[{cluster.id}]")

        self._add_integration_vars()
        self._add_precedences()
        self._add_baseline_order()
        self._add_wash_windows()
        self._add_wash_conflicts()
        self._add_integration_constraints()
        self._add_objective()

    # -- ψ integration (Eqs. 7, 21) ------------------------------------------------

    def _add_integration_vars(self) -> None:
        if not self.config.enable_integration:
            return
        m = self.model
        removals = [t for t in self.tasks if t.kind is TaskKind.REMOVAL]
        for rm in removals:
            rm_nodes = set(rm.path or ())
            terms: List[Variable] = []
            for cluster in self.clusters:
                covering = [
                    i
                    for i, cand in enumerate(self.candidates[cluster.id])
                    if rm_nodes <= set(cand)
                ]
                if not covering:
                    continue
                psi = m.add_binary_var(f"psi[{rm.id},{cluster.id}]")
                self._psi[(rm.id, cluster.id)] = psi
                m.add_linear_constraint(
                    [(psi, 1.0)] + [(self._x[(cluster.id, i)], -1.0) for i in covering],
                    "<=",
                    0.0,
                    f"psi_cover[{rm.id},{cluster.id}]",
                )
                terms.append(psi)
            if terms:
                m.add_linear_constraint(
                    [(p, 1.0) for p in terms], "<=", 1.0, f"psi_once[{rm.id}]"
                )
                self._psi_sum[rm.id] = LinExpr.sum(terms)

    # -- precedence constraints (Eqs. 2, 4, 5) ----------------------------------------

    def _add_precedences(self) -> None:
        op_task: Dict[str, ScheduledTask] = {
            t.op_id: t for t in self.tasks if t.kind is TaskKind.OPERATION
        }
        by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
        for task in self.tasks:
            if task.edge is not None:
                by_edge.setdefault(task.edge, {})[task.kind] = task

        for edge, group in by_edge.items():
            src, dst = edge
            transport = group.get(TaskKind.TRANSPORT)
            removal = group.get(TaskKind.REMOVAL)
            waste = group.get(TaskKind.WASTE)
            producer = op_task.get(src)
            if transport is not None and producer is not None:
                self._add_ge_end(
                    self._t[transport.id], producer, f"prec_tr[{transport.id}]"
                )
            if removal is not None and transport is not None:
                self._add_ge_end(
                    self._t[removal.id], transport, f"prec_rm[{removal.id}]"
                )
            consumer = op_task.get(dst)
            if consumer is not None:
                if removal is not None:
                    self._add_ge_end(
                        self._t[consumer.id],
                        removal,
                        f"prec_op_rm[{consumer.id},{removal.id}]",
                    )
                elif transport is not None:
                    self._add_ge_end(
                        self._t[consumer.id],
                        transport,
                        f"prec_op_tr[{consumer.id},{transport.id}]",
                    )
                elif producer is not None:
                    # Same-device hand-off: no transport task exists.
                    self._add_ge_end(
                        self._t[consumer.id],
                        producer,
                        f"prec_op_op[{consumer.id},{producer.id}]",
                    )
            if waste is not None and producer is not None:
                self._add_ge_end(
                    self._t[waste.id], producer, f"prec_ws[{waste.id}]"
                )

    # -- fixed relative order of node-sharing baseline tasks (Eqs. 3, 8) ---------------

    def _add_baseline_order(self) -> None:
        ordered = sorted(self.tasks, key=lambda t: (t.start, t.end, t.id))
        node_sets = [set(t.occupied_nodes) for t in ordered]
        for i, a in enumerate(ordered):
            nodes_a = node_sets[i]
            for j in range(i + 1, len(ordered)):
                b = ordered[j]
                if a.kind is TaskKind.OPERATION and b.kind is TaskKind.OPERATION:
                    if a.device != b.device:
                        continue
                elif not (nodes_a & node_sets[j]):
                    continue
                self._add_ge_end(self._t[b.id], a, f"order[{a.id},{b.id}]")

    # -- wash windows (Eq. 16) -----------------------------------------------------------

    def _wash_duration(self, cluster: WashCluster) -> LinExpr:
        cands = self.candidates[cluster.id]
        return LinExpr.sum(
            self.chip.wash_time_s(cand) * LinExpr.from_any(self._x[(cluster.id, i)])
            for i, cand in enumerate(cands)
        )

    def _wash_length(self, cluster: WashCluster) -> LinExpr:
        cands = self.candidates[cluster.id]
        return LinExpr.sum(
            self.chip.path_length_mm(cand) * LinExpr.from_any(self._x[(cluster.id, i)])
            for i, cand in enumerate(cands)
        )

    def _add_wash_windows(self) -> None:
        m = self.model
        for cluster in self.clusters:
            tw = self._wash_t[cluster.id]
            neg_dur = [(x, -wt) for x, wt in self._wash_dur_terms[cluster.id]]
            for source_id in sorted(cluster.source_tasks):
                source = self.baseline.get(source_id)
                self._add_ge_end(tw, source, f"wash_after[{cluster.id},{source_id}]")
            for blocker_id in sorted(cluster.blocking_tasks):
                m.add_linear_constraint(
                    [(self._t[blocker_id], 1.0), (tw, -1.0)] + neg_dur,
                    ">=",
                    0.0,
                    f"wash_before[{cluster.id},{blocker_id}]",
                )

    # -- wash resource conflicts (Eqs. 19, 20) ----------------------------------------------

    def _add_wash_conflicts(self) -> None:
        m = self.model
        big = float(self.horizon)
        task_nodes = [(task, set(task.occupied_nodes)) for task in self.tasks]
        for cluster in self.clusters:
            tw = self._wash_t[cluster.id]
            neg_dur = [(x, -wt) for x, wt in self._wash_dur_terms[cluster.id]]
            exempt = cluster.source_tasks | cluster.blocking_tasks
            mu_of: Dict[str, Variable] = {}
            for i, cand in enumerate(self.candidates[cluster.id]):
                cand_nodes = set(cand)
                x = self._x[(cluster.id, i)]
                for task, nodes in task_nodes:
                    if task.id in exempt:
                        continue
                    if not (cand_nodes & nodes):
                        continue
                    mu = mu_of.get(task.id)
                    if mu is None:
                        mu = m.add_binary_var(f"mu[{cluster.id},{task.id}]")
                        mu_of[task.id] = mu
                    psi = self._psi.get((task.id, cluster.id))
                    tp = self._t[task.id]
                    # μ = 1: wash after the task; μ = 0: task after the wash.
                    # w_after: tw >= tp + dur(task) - M(1-μ) - M(1-x) - Mψ
                    # as a batch row (Eq. 7 absorption folded into +dψ terms).
                    d = float(task.duration)
                    after: List[Tuple[Variable, float]] = [
                        (tw, 1.0), (tp, -1.0), (mu, -big), (x, -big)
                    ]
                    psum = self._psi_sum.get(task.id)
                    if psum is not None:
                        after.extend((p, d * c) for p, c in psum.terms.items())
                    if psi is not None:
                        after.append((psi, big))
                    m.add_linear_constraint(
                        after, ">=", d - 2.0 * big,
                        f"w_after[{cluster.id},{i},{task.id}]",
                    )
                    # w_before: tp >= tw + dur(wash) - Mμ - M(1-x) - Mψ
                    before: List[Tuple[Variable, float]] = [
                        (tp, 1.0), (tw, -1.0), (mu, big), (x, -big)
                    ]
                    before.extend(neg_dur)
                    if psi is not None:
                        before.append((psi, big))
                    m.add_linear_constraint(
                        before, ">=", -big,
                        f"w_before[{cluster.id},{i},{task.id}]",
                    )

        # wash-wash conflicts (Eq. 20)
        cand_sets = {
            c.id: [set(cand) for cand in self.candidates[c.id]] for c in self.clusters
        }
        for a_idx, a in enumerate(self.clusters):
            neg_dur_a = [(x, -wt) for x, wt in self._wash_dur_terms[a.id]]
            ta = self._wash_t[a.id]
            for b in self.clusters[a_idx + 1:]:
                neg_dur_b = [(x, -wt) for x, wt in self._wash_dur_terms[b.id]]
                tb = self._wash_t[b.id]
                eta: Optional[Variable] = None
                for i, nodes_a in enumerate(cand_sets[a.id]):
                    for j, nodes_b in enumerate(cand_sets[b.id]):
                        if not (nodes_a & nodes_b):
                            continue
                        if eta is None:
                            eta = m.add_binary_var(f"eta[{a.id},{b.id}]")
                        xa = self._x[(a.id, i)]
                        xb = self._x[(b.id, j)]
                        # η = 1: wash a after wash b, else b after a; both
                        # rows relax by M(2 - x_a - x_b) unless selected.
                        m.add_linear_constraint(
                            [(ta, 1.0), (tb, -1.0), (eta, -big), (xa, -big), (xb, -big)]
                            + neg_dur_b,
                            ">=",
                            -3.0 * big,
                            f"ww_a[{a.id},{b.id},{i},{j}]",
                        )
                        m.add_linear_constraint(
                            [(tb, 1.0), (ta, -1.0), (eta, big), (xa, -big), (xb, -big)]
                            + neg_dur_a,
                            ">=",
                            -2.0 * big,
                            f"ww_b[{a.id},{b.id},{i},{j}]",
                        )

    # -- ψ timing constraints (Eq. 21) ---------------------------------------------------

    def _add_integration_constraints(self) -> None:
        m = self.model
        big = float(self.horizon)
        by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
        for task in self.tasks:
            if task.edge is not None:
                by_edge.setdefault(task.edge, {})[task.kind] = task
        op_task: Dict[str, ScheduledTask] = {
            t.op_id: t for t in self.tasks if t.kind is TaskKind.OPERATION
        }
        for (rm_id, cluster_id), psi in self._psi.items():
            rm = self.baseline.get(rm_id)
            tw = self._wash_t[cluster_id]
            neg_dur = [(x, -wt) for x, wt in self._wash_dur_terms[cluster_id]]
            group = by_edge.get(rm.edge or ("", ""), {})
            transport = group.get(TaskKind.TRANSPORT)
            consumer = op_task.get(rm.edge[1]) if rm.edge else None
            if transport is None or consumer is None:
                # Cannot prove the wash covers the removal's timing role.
                m.add_linear_constraint(
                    [(psi, 1.0)], "<=", 0.0, f"psi_off[{rm_id},{cluster_id}]"
                )
                continue
            # The wash plays the removal's role: start after the transport
            # that cached the excess fluid (slack M(1-ψ) when not absorbed)...
            self._add_ge_end(
                tw,
                transport,
                f"psi_after[{rm_id},{cluster_id}]",
                extra=[(psi, -big)],
                rhs_shift=-big,
            )
            # ... and finish before the consuming operation starts.
            m.add_linear_constraint(
                [(self._t[consumer.id], 1.0), (tw, -1.0), (psi, -big)] + neg_dur,
                ">=",
                -big,
                f"psi_before[{rm_id},{cluster_id}]",
            )

    # -- objective (Eq. 26) ------------------------------------------------------------------

    def _add_objective(self) -> None:
        m = self.model
        t_assay = m.add_integer_var("T_assay", 0, self.horizon)
        for task in self.tasks:
            self._add_ge_end(t_assay, task, f"T_ge[{task.id}]")
        for cluster in self.clusters:
            m.add_linear_constraint(
                [(t_assay, 1.0), (self._wash_t[cluster.id], -1.0)]
                + [(x, -wt) for x, wt in self._wash_dur_terms[cluster.id]],
                ">=",
                0.0,
                f"T_ge_wash[{cluster.id}]",
            )
        length_total = LinExpr.sum(self._wash_length(c) for c in self.clusters)
        objective = (
            self.config.alpha * len(self.clusters)
            + self.config.beta * length_total
            + self.config.gamma * LinExpr.from_any(t_assay)
        )
        # Tiny pressure so tasks do not float needlessly late.
        drift = LinExpr.sum(LinExpr.from_any(v) for v in self._t.values())
        self.model.set_objective(objective + 1e-6 * drift)
        self._t_assay = t_assay

    def reweight(self, config: PDWConfig) -> None:
        """Re-point the built model at new objective weights (Eq. 26 only).

        The feasible region is weight-independent, so a job that differs
        from this one only in alpha/beta/gamma can reuse the variables,
        constraints and COO triplet buffers as-is — only the objective is
        rebuilt, exactly as :meth:`_add_objective` would under the new
        weights.  This is the incremental-re-solve fast path used by the
        Pareto sweep (see :mod:`repro.ilp.incremental`).
        """
        if not self.model.variables:
            raise WashError("reweight requires a built model")
        self.config = config
        length_total = LinExpr.sum(self._wash_length(c) for c in self.clusters)
        objective = (
            config.alpha * len(self.clusters)
            + config.beta * length_total
            + config.gamma * LinExpr.from_any(self._t_assay)
        )
        drift = LinExpr.sum(LinExpr.from_any(v) for v in self._t.values())
        self.model.set_objective(objective + 1e-6 * drift)

    # -- solving / extraction -------------------------------------------------------------------

    def ensure_built(self) -> None:
        """Assemble the model exactly once (timed, traced)."""
        if self.model.variables:
            return
        started = time.perf_counter()
        with span("ilp.build", model=self.model.name):
            self.build()
        self.build_time_s = time.perf_counter() - started

    def solve(self, portfolio: Optional[SolverPortfolio] = None) -> IlpWashOutcome:
        """Build (if needed), solve via the degradation ladder, and extract.

        A proven-infeasible/unbounded model raises a clean
        :class:`InfeasibleError` / :class:`UnboundedError`;
        :class:`~repro.errors.LadderExhausted` (every backend rung failed)
        propagates so the ILP stage can fall back to greedy assembly.
        """
        self.ensure_built()
        pf = portfolio if portfolio is not None else SolverPortfolio.from_config(self.config)
        result = pf.solve(self.model)
        solution = result.solution
        self.last_solution = solution if solution.status.has_solution else None
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"PDW scheduling ILP is infeasible ({self.model.stats()})"
            )
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedError("PDW scheduling ILP is unbounded")
        if not solution.status.has_solution:  # pragma: no cover - ladder guarantees
            raise SolverError(f"PDW scheduling ILP failed: {solution.status.value}")

        starts = {task.id: solution.rounded(self._t[task.id]) for task in self.tasks}
        wash_starts, wash_paths, wash_durs = {}, {}, {}
        for cluster in self.clusters:
            wash_starts[cluster.id] = solution.rounded(self._wash_t[cluster.id])
            for i, cand in enumerate(self.candidates[cluster.id]):
                if solution.rounded(self._x[(cluster.id, i)]) == 1:
                    wash_paths[cluster.id] = cand
                    wash_durs[cluster.id] = self.chip.wash_time_s(cand)
                    break
        absorbed = {
            rm_id: cluster_id
            for (rm_id, cluster_id), psi in self._psi.items()
            if solution.rounded(psi) == 1
        }
        return IlpWashOutcome(
            status=solution.status,
            objective=float(solution.objective or 0.0),
            solve_time_s=solution.solve_time_s,
            starts=starts,
            wash_starts=wash_starts,
            wash_paths=wash_paths,
            wash_durations=wash_durs,
            absorbed=absorbed,
            model_stats=self.model.stats(),
            mip_gap=solution.mip_gap,
            n_variables=len(self.model.variables),
            n_binaries=self.model.num_binaries,
            n_constraints=len(self.model.constraints),
            rung=result.rung,
            attempts=result.attempts,
            build_time_s=self.build_time_s,
            solver_mode=result.mode,
            race_wall_s=result.race_wall_s,
            warm_started=pf.incumbent is not None,
        )
