"""The PDW scheduling ILP — Eqs. (1)-(26) over re-timed task variables.

Decision variables
------------------
* one integer start per baseline task (operations keep their durations,
  Eq. 1; precedences follow Eqs. 2, 4, 5),
* one integer start per wash operation plus one binary per candidate wash
  path (the selected candidate determines the wash duration via Eq. 17 and
  its contribution to :math:`L_{wash}`, Eq. 25),
* ordering binaries for wash/task and wash/wash node conflicts
  (Eqs. 19, 20),
* integration binaries :math:`\\psi` folding an excess-removal task into a
  wash whose path covers it (Eqs. 7, 21).

Relative order among *baseline* tasks that share chip nodes is kept as in
the baseline schedule (the paper's monolithic model also re-orders them;
fixing the order is the decomposition that keeps the model tractable — see
DESIGN.md).  Everything may shift in time, so wash windows (Eq. 16) are
enforced against task variables and the model is always feasible: a tight
window simply delays the blocking task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.core.config import PDWConfig
from repro.core.targets import WashCluster
from repro.errors import InfeasibleError, SolverError, UnboundedError, WashError
from repro.ilp import (
    LinExpr,
    Model,
    RungAttempt,
    SolverPortfolio,
    SolveStatus,
    Variable,
)
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind


@dataclass
class IlpWashOutcome:
    """Raw solver outcome, consumed by the PDW orchestrator."""

    status: SolveStatus
    objective: float
    solve_time_s: float
    starts: Dict[str, int]
    wash_starts: Dict[str, int]
    wash_paths: Dict[str, FlowPath]
    wash_durations: Dict[str, int]
    absorbed: Dict[str, str] = field(default_factory=dict)  # removal id -> cluster id
    model_stats: str = ""
    mip_gap: Optional[float] = None
    n_variables: int = 0
    n_binaries: int = 0
    n_constraints: int = 0
    rung: str = "highs"
    attempts: Tuple[RungAttempt, ...] = ()


class WashScheduleIlp:
    """Builds and solves the PDW scheduling model."""

    def __init__(
        self,
        chip: Chip,
        baseline: Schedule,
        clusters: Sequence[WashCluster],
        candidates: Dict[str, List[FlowPath]],
        config: Optional[PDWConfig] = None,
    ):
        self.chip = chip
        self.baseline = baseline
        self.clusters = list(clusters)
        self.candidates = candidates
        self.config = config if config is not None else PDWConfig()
        for cluster in self.clusters:
            if not candidates.get(cluster.id):
                raise WashError(f"cluster {cluster.id!r} has no candidate paths")

        self.tasks: List[ScheduledTask] = self.baseline.tasks()
        self.horizon = self._horizon()
        self.model = Model("pdw-schedule", big_m=float(self.horizon))
        self._t: Dict[str, Variable] = {}
        self._wash_t: Dict[str, Variable] = {}
        self._x: Dict[Tuple[str, int], Variable] = {}
        self._psi: Dict[Tuple[str, str], Variable] = {}
        self._psi_sum: Dict[str, LinExpr] = {}

    # -- model assembly ---------------------------------------------------------

    def _horizon(self) -> int:
        wash_worst = sum(
            max(self.chip.wash_time_s(p) for p in self.candidates[c.id])
            for c in self.clusters
        )
        return self.baseline.makespan + wash_worst + 10

    def _duration_expr(self, task: ScheduledTask) -> LinExpr:
        """Effective duration: removals shrink to zero when absorbed (Eq. 7)."""
        base = LinExpr({}, float(task.duration))
        psi = self._psi_sum.get(task.id)
        if psi is not None:
            return base - task.duration * psi
        return base

    def _end_expr(self, task: ScheduledTask) -> LinExpr:
        return LinExpr.from_any(self._t[task.id]) + self._duration_expr(task)

    def build(self) -> None:
        """Assemble all variables and constraints."""
        m = self.model
        for task in self.tasks:
            # Washes may only delay the assay, never re-pack it tighter
            # than the baseline, so each task keeps its baseline start as
            # a lower bound (this also guarantees T_delay >= 0).
            self._t[task.id] = m.add_integer_var(
                f"t[{task.id}]", task.start, self.horizon
            )
        for cluster in self.clusters:
            self._wash_t[cluster.id] = m.add_integer_var(
                f"tw[{cluster.id}]", 0, self.horizon
            )
            cands = self.candidates[cluster.id]
            xs = [m.add_binary_var(f"x[{cluster.id},{i}]") for i in range(len(cands))]
            for i, x in enumerate(xs):
                self._x[(cluster.id, i)] = x
            m.add_constr(LinExpr.sum(xs) == 1, f"one_path[{cluster.id}]")

        self._add_integration_vars()
        self._add_precedences()
        self._add_baseline_order()
        self._add_wash_windows()
        self._add_wash_conflicts()
        self._add_integration_constraints()
        self._add_objective()

    # -- ψ integration (Eqs. 7, 21) ------------------------------------------------

    def _add_integration_vars(self) -> None:
        if not self.config.enable_integration:
            return
        m = self.model
        removals = [t for t in self.tasks if t.kind is TaskKind.REMOVAL]
        for rm in removals:
            rm_nodes = set(rm.path or ())
            terms: List[Variable] = []
            for cluster in self.clusters:
                covering = [
                    i
                    for i, cand in enumerate(self.candidates[cluster.id])
                    if rm_nodes <= set(cand)
                ]
                if not covering:
                    continue
                psi = m.add_binary_var(f"psi[{rm.id},{cluster.id}]")
                self._psi[(rm.id, cluster.id)] = psi
                m.add_constr(
                    LinExpr.from_any(psi)
                    <= LinExpr.sum(self._x[(cluster.id, i)] for i in covering),
                    f"psi_cover[{rm.id},{cluster.id}]",
                )
                terms.append(psi)
            if terms:
                total = LinExpr.sum(terms)
                m.add_constr(total <= 1, f"psi_once[{rm.id}]")
                self._psi_sum[rm.id] = total

    # -- precedence constraints (Eqs. 2, 4, 5) ----------------------------------------

    def _add_precedences(self) -> None:
        m = self.model
        op_task: Dict[str, ScheduledTask] = {
            t.op_id: t for t in self.tasks if t.kind is TaskKind.OPERATION
        }
        by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
        for task in self.tasks:
            if task.edge is not None:
                by_edge.setdefault(task.edge, {})[task.kind] = task

        for edge, group in by_edge.items():
            src, dst = edge
            transport = group.get(TaskKind.TRANSPORT)
            removal = group.get(TaskKind.REMOVAL)
            waste = group.get(TaskKind.WASTE)
            producer = op_task.get(src)
            if transport is not None and producer is not None:
                m.add_constr(
                    LinExpr.from_any(self._t[transport.id]) >= self._end_expr(producer),
                    f"prec_tr[{transport.id}]",
                )
            if removal is not None and transport is not None:
                m.add_constr(
                    LinExpr.from_any(self._t[removal.id]) >= self._end_expr(transport),
                    f"prec_rm[{removal.id}]",
                )
            consumer = op_task.get(dst)
            if consumer is not None:
                if removal is not None:
                    m.add_constr(
                        LinExpr.from_any(self._t[consumer.id]) >= self._end_expr(removal),
                        f"prec_op_rm[{consumer.id},{removal.id}]",
                    )
                elif transport is not None:
                    m.add_constr(
                        LinExpr.from_any(self._t[consumer.id]) >= self._end_expr(transport),
                        f"prec_op_tr[{consumer.id},{transport.id}]",
                    )
                elif producer is not None:
                    # Same-device hand-off: no transport task exists.
                    m.add_constr(
                        LinExpr.from_any(self._t[consumer.id]) >= self._end_expr(producer),
                        f"prec_op_op[{consumer.id},{producer.id}]",
                    )
            if waste is not None and producer is not None:
                m.add_constr(
                    LinExpr.from_any(self._t[waste.id]) >= self._end_expr(producer),
                    f"prec_ws[{waste.id}]",
                )

    # -- fixed relative order of node-sharing baseline tasks (Eqs. 3, 8) ---------------

    def _add_baseline_order(self) -> None:
        m = self.model
        ordered = sorted(self.tasks, key=lambda t: (t.start, t.end, t.id))
        for i, a in enumerate(ordered):
            nodes_a = set(a.occupied_nodes)
            for b in ordered[i + 1:]:
                if a.kind is TaskKind.OPERATION and b.kind is TaskKind.OPERATION:
                    if a.device != b.device:
                        continue
                elif not (nodes_a & set(b.occupied_nodes)):
                    continue
                m.add_constr(
                    LinExpr.from_any(self._t[b.id]) >= self._end_expr(a),
                    f"order[{a.id},{b.id}]",
                )

    # -- wash windows (Eq. 16) -----------------------------------------------------------

    def _wash_duration(self, cluster: WashCluster) -> LinExpr:
        cands = self.candidates[cluster.id]
        return LinExpr.sum(
            self.chip.wash_time_s(cand) * LinExpr.from_any(self._x[(cluster.id, i)])
            for i, cand in enumerate(cands)
        )

    def _wash_length(self, cluster: WashCluster) -> LinExpr:
        cands = self.candidates[cluster.id]
        return LinExpr.sum(
            self.chip.path_length_mm(cand) * LinExpr.from_any(self._x[(cluster.id, i)])
            for i, cand in enumerate(cands)
        )

    def _add_wash_windows(self) -> None:
        m = self.model
        for cluster in self.clusters:
            tw = self._wash_t[cluster.id]
            dur = self._wash_duration(cluster)
            for source_id in sorted(cluster.source_tasks):
                source = self.baseline.get(source_id)
                m.add_constr(
                    LinExpr.from_any(tw) >= self._end_expr(source),
                    f"wash_after[{cluster.id},{source_id}]",
                )
            for blocker_id in sorted(cluster.blocking_tasks):
                m.add_constr(
                    LinExpr.from_any(self._t[blocker_id]) >= LinExpr.from_any(tw) + dur,
                    f"wash_before[{cluster.id},{blocker_id}]",
                )

    # -- wash resource conflicts (Eqs. 19, 20) ----------------------------------------------

    def _add_wash_conflicts(self) -> None:
        m = self.model
        big = float(self.horizon)
        for cluster in self.clusters:
            tw = LinExpr.from_any(self._wash_t[cluster.id])
            dur = self._wash_duration(cluster)
            exempt = cluster.source_tasks | cluster.blocking_tasks
            mu_of: Dict[str, Variable] = {}
            for i, cand in enumerate(self.candidates[cluster.id]):
                cand_nodes = set(cand)
                x = LinExpr.from_any(self._x[(cluster.id, i)])
                for task in self.tasks:
                    if task.id in exempt:
                        continue
                    if not (cand_nodes & set(task.occupied_nodes)):
                        continue
                    mu = mu_of.get(task.id)
                    if mu is None:
                        mu = m.add_binary_var(f"mu[{cluster.id},{task.id}]")
                        mu_of[task.id] = mu
                    psi = self._psi.get((task.id, cluster.id))
                    absorbed_slack = (
                        big * LinExpr.from_any(psi) if psi is not None else LinExpr()
                    )
                    tp = LinExpr.from_any(self._t[task.id])
                    # μ = 1: wash after the task; μ = 0: task after the wash.
                    m.add_constr(
                        tw
                        >= tp
                        + self._duration_expr(task)
                        - big * (1 - LinExpr.from_any(mu))
                        - big * (1 - x)
                        - absorbed_slack,
                        f"w_after[{cluster.id},{i},{task.id}]",
                    )
                    m.add_constr(
                        tp
                        >= tw
                        + dur
                        - big * LinExpr.from_any(mu)
                        - big * (1 - x)
                        - absorbed_slack,
                        f"w_before[{cluster.id},{i},{task.id}]",
                    )

        # wash-wash conflicts (Eq. 20)
        for a_idx, a in enumerate(self.clusters):
            for b in self.clusters[a_idx + 1:]:
                eta: Optional[Variable] = None
                for i, cand_a in enumerate(self.candidates[a.id]):
                    for j, cand_b in enumerate(self.candidates[b.id]):
                        if not (set(cand_a) & set(cand_b)):
                            continue
                        if eta is None:
                            eta = m.add_binary_var(f"eta[{a.id},{b.id}]")
                        slack = big * (
                            2
                            - LinExpr.from_any(self._x[(a.id, i)])
                            - LinExpr.from_any(self._x[(b.id, j)])
                        )
                        ta = LinExpr.from_any(self._wash_t[a.id])
                        tb = LinExpr.from_any(self._wash_t[b.id])
                        m.add_constr(
                            ta
                            >= tb + self._wash_duration(b)
                            - big * (1 - LinExpr.from_any(eta))
                            - slack,
                            f"ww_a[{a.id},{b.id},{i},{j}]",
                        )
                        m.add_constr(
                            tb
                            >= ta + self._wash_duration(a)
                            - big * LinExpr.from_any(eta)
                            - slack,
                            f"ww_b[{a.id},{b.id},{i},{j}]",
                        )

    # -- ψ timing constraints (Eq. 21) ---------------------------------------------------

    def _add_integration_constraints(self) -> None:
        m = self.model
        big = float(self.horizon)
        by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
        for task in self.tasks:
            if task.edge is not None:
                by_edge.setdefault(task.edge, {})[task.kind] = task
        op_task: Dict[str, ScheduledTask] = {
            t.op_id: t for t in self.tasks if t.kind is TaskKind.OPERATION
        }
        for (rm_id, cluster_id), psi in self._psi.items():
            rm = self.baseline.get(rm_id)
            cluster = next(c for c in self.clusters if c.id == cluster_id)
            tw = LinExpr.from_any(self._wash_t[cluster_id])
            dur = self._wash_duration(cluster)
            slack = big * (1 - LinExpr.from_any(psi))
            group = by_edge.get(rm.edge or ("", ""), {})
            transport = group.get(TaskKind.TRANSPORT)
            consumer = op_task.get(rm.edge[1]) if rm.edge else None
            if transport is None or consumer is None:
                # Cannot prove the wash covers the removal's timing role.
                m.add_constr(LinExpr.from_any(psi) <= 0, f"psi_off[{rm_id},{cluster_id}]")
                continue
            if transport is not None:
                # The wash plays the removal's role: start after the
                # transport that cached the excess fluid...
                m.add_constr(
                    tw >= self._end_expr(transport) - slack,
                    f"psi_after[{rm_id},{cluster_id}]",
                )
            # ... and finish before the consuming operation starts.
            m.add_constr(
                LinExpr.from_any(self._t[consumer.id]) >= tw + dur - slack,
                f"psi_before[{rm_id},{cluster_id}]",
            )

    # -- objective (Eq. 26) ------------------------------------------------------------------

    def _add_objective(self) -> None:
        m = self.model
        t_assay = m.add_integer_var("T_assay", 0, self.horizon)
        for task in self.tasks:
            m.add_constr(
                LinExpr.from_any(t_assay) >= self._end_expr(task),
                f"T_ge[{task.id}]",
            )
        for cluster in self.clusters:
            m.add_constr(
                LinExpr.from_any(t_assay)
                >= LinExpr.from_any(self._wash_t[cluster.id]) + self._wash_duration(cluster),
                f"T_ge_wash[{cluster.id}]",
            )
        length_total = LinExpr.sum(self._wash_length(c) for c in self.clusters)
        objective = (
            self.config.alpha * len(self.clusters)
            + self.config.beta * length_total
            + self.config.gamma * LinExpr.from_any(t_assay)
        )
        # Tiny pressure so tasks do not float needlessly late.
        drift = LinExpr.sum(LinExpr.from_any(v) for v in self._t.values())
        self.model.set_objective(objective + 1e-6 * drift)
        self._t_assay = t_assay

    # -- solving / extraction -------------------------------------------------------------------

    def solve(self, portfolio: Optional[SolverPortfolio] = None) -> IlpWashOutcome:
        """Build (if needed), solve via the degradation ladder, and extract.

        A proven-infeasible/unbounded model raises a clean
        :class:`InfeasibleError` / :class:`UnboundedError`;
        :class:`~repro.errors.LadderExhausted` (every backend rung failed)
        propagates so the ILP stage can fall back to greedy assembly.
        """
        if not self.model.variables:
            self.build()
        pf = portfolio if portfolio is not None else SolverPortfolio.from_config(self.config)
        result = pf.solve(self.model)
        solution = result.solution
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"PDW scheduling ILP is infeasible ({self.model.stats()})"
            )
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedError("PDW scheduling ILP is unbounded")
        if not solution.status.has_solution:  # pragma: no cover - ladder guarantees
            raise SolverError(f"PDW scheduling ILP failed: {solution.status.value}")

        starts = {task.id: solution.rounded(self._t[task.id]) for task in self.tasks}
        wash_starts, wash_paths, wash_durs = {}, {}, {}
        for cluster in self.clusters:
            wash_starts[cluster.id] = solution.rounded(self._wash_t[cluster.id])
            for i, cand in enumerate(self.candidates[cluster.id]):
                if solution.rounded(self._x[(cluster.id, i)]) == 1:
                    wash_paths[cluster.id] = cand
                    wash_durs[cluster.id] = self.chip.wash_time_s(cand)
                    break
        absorbed = {
            rm_id: cluster_id
            for (rm_id, cluster_id), psi in self._psi.items()
            if solution.rounded(psi) == 1
        }
        return IlpWashOutcome(
            status=solution.status,
            objective=float(solution.objective or 0.0),
            solve_time_s=solution.solve_time_s,
            starts=starts,
            wash_starts=wash_starts,
            wash_paths=wash_paths,
            wash_durations=wash_durs,
            absorbed=absorbed,
            model_stats=self.model.stats(),
            mip_gap=solution.mip_gap,
            n_variables=len(self.model.variables),
            n_binaries=self.model.num_binaries,
            n_constraints=len(self.model.constraints),
            rung=result.rung,
            attempts=result.attempts,
        )
