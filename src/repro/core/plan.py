"""Wash plan results and the metrics reported in the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.pipeline.report import RunReport
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import TaskKind


@dataclass(frozen=True)
class WashOperation:
    """One executed wash operation :math:`w_j`."""

    id: str
    targets: FrozenSet[str]
    path: FlowPath
    start: int
    duration: int
    #: Removal-task ids absorbed by this wash (the ψ = 1 integrations).
    absorbed_removals: Tuple[str, ...] = ()

    @property
    def end(self) -> int:
        """Exclusive end tick."""
        return self.start + self.duration


@dataclass
class WashPlan:
    """A complete wash-optimized assay execution.

    Produced by both PDW and the baselines so the experiment harness can
    compare them uniformly.  All Table II / Fig. 4 / Fig. 5 metrics are
    derived properties.
    """

    method: str
    chip: Chip
    schedule: Schedule
    washes: List[WashOperation]
    baseline_schedule: Schedule
    solver_status: str = "n/a"
    #: Degradation-ladder rung that produced the plan (``highs`` |
    #: ``highs-relaxed`` | ``branch_bound`` | ``greedy`` | ``heuristic``).
    solver_rung: str = "n/a"
    solve_time_s: float = 0.0
    notes: Dict[str, float] = field(default_factory=dict)
    #: Per-stage instrumentation of the pipeline that built this plan.
    report: Optional[RunReport] = None
    #: Degradation summary (:class:`~repro.degrade.model.DegradationInfo`)
    #: when the plan was built against a degraded chip; ``None`` on a
    #: pristine chip.  Loose typing keeps :mod:`repro.core.plan` free of a
    #: :mod:`repro.degrade` import.
    degradation: Optional[object] = None
    #: Online repair history (:class:`~repro.degrade.repair.RepairRecord`
    #: tuples) when this plan is the product of a detect→replan loop.
    repairs: Tuple = ()

    # -- Table II metrics ---------------------------------------------------------

    @property
    def n_wash(self) -> int:
        """:math:`N_{wash}` — number of wash operations."""
        return len(self.washes)

    @property
    def l_wash_mm(self) -> float:
        """:math:`L_{wash}` — total physical length of all wash paths (mm)."""
        return sum(self.chip.path_length_mm(w.path) for w in self.washes)

    @property
    def t_assay(self) -> int:
        """:math:`T_{assay}` — completion time of the wash-aware schedule."""
        return self.schedule.makespan

    @property
    def baseline_makespan(self) -> int:
        """Completion time of the wash-free schedule."""
        return self.baseline_schedule.makespan

    @property
    def t_delay(self) -> int:
        """:math:`T_{delay}` — assay delay caused by wash operations."""
        return self.t_assay - self.baseline_makespan

    # -- Fig. 4 / Fig. 5 metrics -----------------------------------------------------

    @property
    def average_waiting_time(self) -> float:
        """Average waiting time of biochemical operations (Fig. 4).

        Mean, over operations, of how much later each starts compared to
        the wash-free baseline.
        """
        ops = self.schedule.operations()
        if not ops:
            return 0.0
        total = 0
        for task in ops:
            base = self.baseline_schedule.get(task.id)
            total += max(0, task.start - base.start)
        return total / len(ops)

    @property
    def total_wash_time(self) -> int:
        """Total wash time (Fig. 5): sum of wash-operation durations."""
        return sum(w.duration for w in self.washes)

    @property
    def integrated_removals(self) -> int:
        """How many excess-removal tasks were absorbed into washes (ψ = 1)."""
        return sum(len(w.absorbed_removals) for w in self.washes)

    # -- reporting -----------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """All headline metrics as a flat mapping."""
        return {
            "n_wash": float(self.n_wash),
            "l_wash_mm": round(self.l_wash_mm, 2),
            "t_assay_s": float(self.t_assay),
            "t_delay_s": float(self.t_delay),
            "avg_wait_s": round(self.average_waiting_time, 3),
            "total_wash_time_s": float(self.total_wash_time),
            "integrated_removals": float(self.integrated_removals),
        }

    def wash_tasks(self) -> List[str]:
        """Ids of the WASH tasks present in the final schedule."""
        return [t.id for t in self.schedule.tasks(TaskKind.WASH)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WashPlan({self.method}, N={self.n_wash}, "
            f"L={self.l_wash_mm:.0f}mm, T_assay={self.t_assay}s, "
            f"delay={self.t_delay}s)"
        )
