"""Configuration of the PDW optimizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.contam.necessity import NecessityPolicy
from repro.errors import WashError


@dataclass(frozen=True)
class PDWConfig:
    """Knobs of the PDW flow, defaulting to the paper's Section IV setup.

    Attributes
    ----------
    alpha, beta, gamma:
        Objective weights of Eq. (26) for the number of wash operations,
        total wash-path length (mm) and assay completion time (s).
    time_limit_s:
        Wall-clock budget for the scheduling ILP.  The paper allows
        15 minutes per benchmark; the default here is far smaller because
        the decomposed model solves quickly.
    mip_gap:
        Relative optimality gap accepted from the solver.
    max_candidates:
        Candidate wash paths generated per wash operation.
    merge_clusters:
        Whether to merge compatible wash clusters (fewer, longer washes)
        when the merge shortens the total path length.
    max_wash_path_mm:
        Physical cap on a single wash path.  A buffer flush is driven by
        one pressure source, which bounds the channel length it can flush
        reliably; merges that would exceed the cap are rejected.  The
        default matches the per-wash lengths of the paper's Table II
        results (~20-30 mm per wash operation).
    path_mode:
        ``"greedy"`` — candidate paths from the router (default);
        ``"exact"`` — solve the cell-based path ILP of Eqs. (12)-(15) per
        wash operation (slow; small chips only).
    necessity:
        Which wash-necessity analysis to apply.  The
        :attr:`~repro.contam.necessity.NecessityPolicy.REUSE_ONLY` setting
        disables the Type 2/3 exemptions (ablation of contribution 1).
    enable_integration:
        Whether excess removals may be folded into washes (ψ, Eq. 21;
        ablation of contribution 2).
    integration_window_s:
        Slack (seconds) around a wash cluster's baseline [release,
        deadline] window when collecting nearby excess removals as
        integration candidates: a removal overlapping the widened window
        may contribute its path to the cluster's candidate pool.  The ILP
        still enforces the exact ψ timing of Eq. (21); this knob only
        bounds which removals are *considered*, trading candidate-pool
        size against integration opportunities found.
    solver:
        Which rung of the solver degradation ladder to use.  ``"auto"``
        (default) walks the full ladder — HiGHS, a relaxed HiGHS retry,
        then branch-and-bound — stopping at the first usable incumbent;
        ``"highs"`` / ``"branch_bound"`` pin a backend; ``"greedy"`` skips
        the ILP entirely and assembles the plan with the sweep-line
        heuristic (``REPRO_FORCE_SOLVER`` overrides ``"auto"`` from the
        environment).
    solver_mode:
        How the portfolio executes its rungs.  ``"ladder"`` (default)
        walks them serially under the budget-sliced degradation ladder —
        existing plans stay byte-identical.  ``"race"`` runs the rungs
        concurrently in subprocesses and takes the first acceptable
        incumbent under a deterministic grace-window rule, cancelling the
        losers (``REPRO_SOLVER_MODE`` overrides ``"ladder"`` from the
        environment; see DESIGN.md).
    presolve:
        Whether the solver-independent model-reduction layer runs before
        the scheduling ILP is built.  ``"on"`` (default) tightens
        variable bounds via longest-path propagation over the fixed
        baseline precedence DAG, fixes ordering binaries whose time
        windows provably cannot overlap, tightens every big-M
        coefficient per row and drops dominated wash-path candidates —
        the reduced model provably preserves the optimal objective and
        produces byte-identical canonical plans.  ``"off"`` emits the
        raw constraint system (``REPRO_PRESOLVE`` overrides ``"on"``
        from the environment; see DESIGN.md §16).
    pathgen_workers:
        Thread-pool width for per-cluster candidate-path generation.
        ``0`` (default) defers to the ``REPRO_PATHGEN_WORKERS``
        environment variable, falling back to serial; results are merged
        in cluster order, so every worker count produces the identical
        candidate pools (see docs/PERFORMANCE.md).
    degrade:
        Chip-degradation scenario (DESIGN.md §14): a preset
        (``light`` / ``moderate`` / ``heavy``) or a
        ``channels=N:valves=N:devices=N:seed=N:dead=n1+n2`` spec.  Empty
        (default) means a pristine chip.  The spec's canonical token is
        folded into every downstream cache key (clusters, pathgen, ILP,
        warm-start structure digest), so degraded artifacts never collide
        with healthy ones.
    """

    alpha: float = 0.3
    beta: float = 0.3
    gamma: float = 0.4
    time_limit_s: float = 60.0
    mip_gap: float = 0.01
    max_candidates: int = 6
    merge_clusters: bool = True
    max_wash_path_mm: float = 33.0
    path_mode: str = "greedy"
    necessity: NecessityPolicy = NecessityPolicy.PDW
    enable_integration: bool = True
    integration_window_s: float = 10.0
    solver: str = "auto"
    solver_mode: str = "ladder"
    presolve: str = "on"
    pathgen_workers: int = 0
    degrade: str = ""

    def __post_init__(self) -> None:
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise WashError("objective weights must be non-negative")
        if self.alpha + self.beta + self.gamma <= 0:
            raise WashError("at least one objective weight must be positive")
        if self.time_limit_s <= 0:
            raise WashError("time limit must be positive")
        if self.max_candidates < 1:
            raise WashError("need at least one candidate path per wash")
        if self.path_mode not in ("greedy", "exact"):
            raise WashError(f"unknown path mode {self.path_mode!r}")
        if self.integration_window_s < 0:
            raise WashError("integration window must be non-negative")
        if self.solver not in ("auto", "highs", "branch_bound", "greedy"):
            raise WashError(f"unknown solver {self.solver!r}")
        if self.solver_mode not in ("ladder", "race"):
            raise WashError(f"unknown solver mode {self.solver_mode!r}")
        if self.presolve not in ("on", "off"):
            raise WashError(f"unknown presolve setting {self.presolve!r}")
        if self.pathgen_workers < 0:
            raise WashError("pathgen workers must be >= 0 (0 = env/serial)")
        if self.degrade:
            # Normalize eagerly: the canonical token is what every cache
            # key sees, so equal scenarios written differently (preset vs
            # expanded, reordered fields) share artifacts.  Deferred
            # import: repro.degrade.model has no core dependencies, but
            # importing it at module level would still cycle through
            # repro.arch during interpreter start-up of some entrypoints.
            from repro.degrade.model import parse_spec

            object.__setattr__(self, "degrade", parse_spec(self.degrade).token())


#: The exact parameterization used in the paper's experiments.
PAPER_CONFIG = PDWConfig(alpha=0.3, beta=0.3, gamma=0.4)
