"""PathDriver-Wash (PDW) — the paper's primary contribution.

The optimizer takes a synthesis result (chip + wash-free schedule), runs the
wash-necessity analysis of Section II-A, groups the required wash targets
into wash operations, generates candidate port-to-port wash paths, and
solves the ILP of Section III (Eqs. 1-26) to pick paths and time windows
that minimize

.. math::

    \\alpha N_{wash} + \\beta L_{wash} + \\gamma T_{assay}.

Entry point: :func:`~repro.core.pdw.optimize_washes` /
:class:`~repro.core.pdw.PathDriverWash`.
"""

from repro.core.config import PDWConfig
from repro.core.plan import WashOperation, WashPlan
from repro.core.targets import WashCluster, cluster_requirements
from repro.core.pathgen import candidate_paths
from repro.core.path_ilp import exact_wash_path
from repro.core.pdw import PathDriverWash, optimize_washes

__all__ = [
    "PDWConfig",
    "PathDriverWash",
    "WashCluster",
    "WashOperation",
    "WashPlan",
    "candidate_paths",
    "cluster_requirements",
    "exact_wash_path",
    "optimize_washes",
]
