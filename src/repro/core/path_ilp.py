"""Exact cell-based wash-path ILP — Eqs. (12)-(15).

Selects a minimum-length port-to-port path covering a target set directly
over the chip flow network, with one binary per node:

* exactly one flow port and one waste port are selected (Eq. 12),
* a selected port has exactly one selected neighbor (Eq. 13),
* a selected interior node has exactly two selected neighbors (Eq. 14),
* every wash target is selected (Eq. 15).

Degree constraints admit disconnected cycles ("subtours"); these are
eliminated lazily: after each solve, any selected component that contains
no port is cut off and the model re-solved.  This mode is exponential in
the worst case and intended for small chips / ablation studies — the
default PDW pipeline uses the candidate-path pool instead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

import networkx as nx

from repro.arch.chip import Chip, FlowPath
from repro.errors import WashError
from repro.ilp import LinExpr, Model


def exact_wash_path(
    chip: Chip,
    targets: Sequence[str],
    time_limit_s: float = 30.0,
    max_subtour_rounds: int = 20,
    forbidden: Sequence[str] = (),
) -> FlowPath:
    """Minimum-length wash path covering ``targets`` (Eqs. 12-15).

    ``forbidden`` nodes (e.g. devices loaded with precious fluid) are
    excluded from the path unless they are targets themselves.
    """
    target_set = set(targets)
    if not target_set:
        raise WashError("a wash path needs at least one target")
    banned = set(forbidden) - target_set
    missing = target_set - set(chip.graph.nodes)
    if missing:
        raise WashError(f"unknown wash targets: {sorted(missing)}")
    if target_set & set(chip.flow_ports + chip.waste_ports):
        raise WashError("ports cannot be wash targets")

    nodes = [n for n in chip.graph.nodes if n not in banned]
    node_set = set(nodes)
    flow_ports = [p for p in chip.flow_ports if p in node_set]
    waste_ports = [p for p in chip.waste_ports if p in node_set]
    interior = [n for n in nodes if not chip.is_port(n)]

    model = Model("wash-path", big_m=8.0)
    u: Dict[str, object] = {n: model.add_binary_var(f"u[{n}]") for n in nodes}
    big = model.big_m

    def neighbor_coeffs(n: str):
        """Batch-row coefficients of the selected-neighbor degree of ``n``."""
        return [(u[m], 1.0) for m in chip.neighbors(n) if m in node_set]

    # Eq. 12 — one flow port, one waste port.
    model.add_linear_constraint([(u[p], 1.0) for p in flow_ports], "==", 1.0, "one_flow_port")
    model.add_linear_constraint([(u[p], 1.0) for p in waste_ports], "==", 1.0, "one_waste_port")

    # Eq. 13 — a selected port has exactly one selected neighbor.
    for p in flow_ports + waste_ports:
        deg = neighbor_coeffs(p)
        model.add_linear_constraint(deg + [(u[p], -1.0)], ">=", 0.0, f"port_deg_lo[{p}]")
        model.add_linear_constraint(deg + [(u[p], big)], "<=", 1.0 + big, f"port_deg_hi[{p}]")

    # Eq. 14 — a selected interior node has exactly two selected neighbors
    # (big-M relaxed to a no-op when the node is unselected).
    for n in interior:
        deg = neighbor_coeffs(n)
        model.add_linear_constraint(deg + [(u[n], -big)], ">=", 2.0 - big, f"deg_lo[{n}]")
        model.add_linear_constraint(deg + [(u[n], big)], "<=", 2.0 + big, f"deg_hi[{n}]")

    # Eq. 15 — all targets covered.
    for t in target_set:
        model.add_linear_constraint([(u[t], 1.0)], ">=", 1.0, f"target[{t}]")

    # Eq. 25 contribution — minimize selected cells (∝ path length).
    model.set_objective(LinExpr.sum(u.values()))

    for round_no in range(max_subtour_rounds):
        solution = model.solve(time_limit_s=time_limit_s)
        if not solution.status.has_solution:
            raise WashError(
                f"exact path ILP {solution.status.value} for targets {sorted(target_set)}"
            )
        chosen = {n for n in nodes if solution.rounded(u[n]) == 1}
        subtours = _port_free_components(chip, chosen)
        if not subtours:
            return _order_path(chip, chosen)
        for component in subtours:
            model.add_linear_constraint(
                [(u[n], 1.0) for n in component],
                "<=",
                float(len(component) - 1),
                f"subtour[{round_no}]",
            )
    raise WashError("exact path ILP did not converge (too many subtours)")


def _port_free_components(chip: Chip, chosen: Set[str]) -> List[FrozenSet[str]]:
    """Selected components containing no port (must be cut off)."""
    sub = chip.graph.subgraph(chosen)
    out = []
    for component in nx.connected_components(sub):
        if not any(chip.is_port(n) for n in component):
            out.append(frozenset(component))
    return out


def _order_path(chip: Chip, chosen: Set[str]) -> FlowPath:
    """Order the selected node set into a port-to-port walk."""
    starts = [n for n in chosen if chip.is_port(n) and n in chip.flow_ports]
    if not starts:
        raise WashError("solution has no selected flow port")
    path = [starts[0]]
    visited = {starts[0]}
    while True:
        nxt = [
            m for m in chip.neighbors(path[-1]) if m in chosen and m not in visited
        ]
        if not nxt:
            break
        path.append(nxt[0])
        visited.add(nxt[0])
    if len(visited) != len(chosen):
        raise WashError("selected nodes do not form a single path")
    if path[-1] not in chip.waste_ports:
        raise WashError("ordered path does not end at a waste port")
    return tuple(path)
