"""Grouping wash requirements into wash operations.

A :class:`WashCluster` is the unit the scheduling ILP reasons about: a set
of contaminated nodes washed by one buffer flow, together with the tasks
that produce the residues (the wash must start after they end) and the
tasks that would be corrupted (the wash must finish before they start).

Initial clusters group the requirements left by one contaminating task —
one flow leaves one contiguous contaminated path, naturally washable by one
wash — and a merge pass then combines clusters whose windows overlap when a
single port-to-port path covers the union *and is shorter than two separate
paths* (Eq. 26 trades α per operation against β per millimetre).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.arch.routing import Router, is_simple
from repro.contam.events import WashRequirement
from repro.errors import RoutingError


@dataclass
class WashCluster:
    """A set of wash targets served by one wash operation."""

    id: str
    requirements: List[WashRequirement] = field(default_factory=list)

    @property
    def targets(self) -> FrozenSet[str]:
        """Nodes this wash must cover (the paper's :math:`wt_i`)."""
        return frozenset(r.node for r in self.requirements)

    @property
    def source_tasks(self) -> FrozenSet[str]:
        """Tasks whose completion releases the wash (:math:`t_{j,e}`)."""
        return frozenset(r.source_task for r in self.requirements)

    @property
    def blocking_tasks(self) -> FrozenSet[str]:
        """Tasks the wash must finish before (:math:`t_{j,s}`)."""
        return frozenset(r.blocking_task for r in self.requirements)

    @property
    def release(self) -> int:
        """Earliest baseline tick at which every target is contaminated."""
        return max(r.contaminated_at for r in self.requirements)

    @property
    def deadline(self) -> int:
        """Latest baseline tick by which the wash must complete."""
        return min(r.deadline for r in self.requirements)

    def window_overlaps(self, other: "WashCluster") -> bool:
        """Whether the two baseline wash windows intersect."""
        return self.release <= other.deadline and other.release <= self.deadline


def _coverable(router: Router, targets: Sequence[str], max_candidates: int = 1) -> Optional[FlowPath]:
    """Shortest *simple* port-to-port path covering ``targets``, or ``None``.

    Merges are only accepted when one buffer flush can cover the union
    without doubling back through a channel.  Up to ``max_candidates``
    routes are tried, shortest first, until a simple one is found.
    """
    try:
        candidates = router.port_to_port_candidates(sorted(targets), max_candidates)
    except RoutingError:
        return None
    for path in candidates:
        if is_simple(path):
            return path
    return None


def cluster_requirements(
    chip: Chip,
    requirements: Sequence[WashRequirement],
    merge: bool = True,
    max_path_mm: float = float("inf"),
    avoid: Optional[Sequence[str]] = None,
) -> List[WashCluster]:
    """Group ``requirements`` into wash clusters.

    Requirements are first grouped by contaminating task; clusters are then
    greedily merged (earliest deadline first) while a merge remains
    port-to-port coverable, shortens the total wash-path length, and keeps
    the merged path within ``max_path_mm``.  ``avoid`` (degraded-chip dead
    nodes) constrains every coverability probe, so a merge is never
    justified by a path that routes through a failed channel.
    """
    by_source: Dict[Tuple[str, ...], List[WashRequirement]] = {}
    for req in requirements:
        by_source.setdefault((req.source_task,), []).append(req)

    clusters = [
        WashCluster(id=f"w{i}", requirements=reqs)
        for i, reqs in enumerate(
            (by_source[key] for key in sorted(by_source)), start=1
        )
    ]
    if not merge or len(clusters) < 2:
        return clusters
    return _merged_clusters(chip, clusters, max_path_mm, avoid)


def _merged_clusters(
    chip: Chip,
    clusters: List[WashCluster],
    max_path_mm: float,
    avoid: Optional[Sequence[str]] = None,
) -> List[WashCluster]:
    router = Router(chip, base_avoid=avoid)

    # Greedy pairwise merging, cheapest-deadline first.
    clusters.sort(key=lambda c: (c.deadline, c.id))
    lengths: Dict[str, float] = {}
    paths: Dict[str, Optional[FlowPath]] = {}
    for cluster in clusters:
        paths[cluster.id] = _coverable(router, sorted(cluster.targets))
        lengths[cluster.id] = (
            chip.path_length_mm(paths[cluster.id]) if paths[cluster.id] else float("inf")
        )

    return _merge_pass(chip, clusters, paths, lengths, max_path_mm, router)


def merge_by_blocker(
    chip: Chip,
    clusters: List[WashCluster],
    first_blocker: Dict[str, str],
    max_path_mm: float = float("inf"),
) -> List[WashCluster]:
    """Merge clusters that guard the *same* first blocking task.

    This is the grouping even a demand-driven heuristic performs: all the
    spots one upcoming task needs clean are flushed together, as long as
    one flush can physically cover them (``max_path_mm``).  Used by the
    DAWO baseline; ``first_blocker`` maps cluster id to its earliest
    blocking task.
    """
    router = Router(chip)
    grouped: Dict[str, WashCluster] = {}
    out: List[WashCluster] = []
    for cluster in clusters:
        key = first_blocker[cluster.id]
        host = grouped.get(key)
        if host is None:
            grouped[key] = cluster
            out.append(cluster)
            continue
        union = sorted(host.targets | cluster.targets)
        path = _coverable(router, union)
        if path is None or chip.path_length_mm(path) > max_path_mm:
            out.append(cluster)
            continue
        host.requirements.extend(cluster.requirements)
    for i, cluster in enumerate(out, start=1):
        cluster.id = f"w{i}"
    return out


def _merge_pass(
    chip: Chip,
    clusters: List[WashCluster],
    paths: Dict[str, Optional[FlowPath]],
    lengths: Dict[str, float],
    max_path_mm: float = float("inf"),
    router: Optional[Router] = None,
) -> List[WashCluster]:
    """Greedy pairwise merging while it shortens the total path length."""
    if router is None:
        router = Router(chip)
    merged = True
    while merged:
        merged = False
        for i, a in enumerate(clusters):
            for b in clusters[i + 1:]:
                if not a.window_overlaps(b):
                    continue
                union = sorted(a.targets | b.targets)
                path = _coverable(router, union)
                if path is None:
                    continue
                new_length = chip.path_length_mm(path)
                if new_length >= lengths[a.id] + lengths[b.id]:
                    continue
                if new_length > max_path_mm:
                    continue
                a.requirements.extend(b.requirements)
                clusters.remove(b)
                paths[a.id] = path
                lengths[a.id] = chip.path_length_mm(path)
                merged = True
                break
            if merged:
                break

    for i, cluster in enumerate(clusters, start=1):
        cluster.id = f"w{i}"
    return clusters
