"""The PathDriver-Wash orchestrator.

Pipeline (Section III, decomposed as described in DESIGN.md):

1. replay the wash-free baseline schedule and collect contamination events
   (:mod:`repro.contam.tracker`),
2. wash-necessity analysis — Type 1/2/3 exemptions (Eqs. 9-11),
3. group the remaining requirements into wash clusters
   (:mod:`repro.core.targets`),
4. generate candidate port-to-port wash paths per cluster
   (:mod:`repro.core.pathgen`; optionally refined by the exact path ILP of
   Eqs. 12-15),
5. solve the scheduling ILP (Eqs. 1-8, 16-26) selecting wash paths and time
   windows and folding excess removals into washes (ψ, Eq. 21),
6. assemble and verify the final wash-aware schedule.
"""

from __future__ import annotations

from typing import Dict, List

from repro.contam import (
    ContaminationTracker,
    contamination_violations,
    wash_requirements,
)
from repro.core.config import PDWConfig
from repro.core.pathgen import candidate_paths, integration_candidates
from repro.core.path_ilp import exact_wash_path
from repro.core.plan import WashOperation, WashPlan
from repro.core.schedule_ilp import WashScheduleIlp
from repro.core.targets import cluster_requirements
from repro.errors import WashError
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind
from repro.synth.synthesis import SynthesisResult


class PathDriverWash:
    """PDW wash optimization over a synthesis result."""

    def __init__(self, synthesis: SynthesisResult, config: PDWConfig = PDWConfig()):
        self.synthesis = synthesis
        self.config = config

    # -- pipeline ------------------------------------------------------------------

    def run(self, verify: bool = True) -> WashPlan:
        """Execute the full PDW pipeline and return the wash plan."""
        chip = self.synthesis.chip
        baseline = self.synthesis.schedule

        tracker = ContaminationTracker(chip, baseline)
        report = wash_requirements(tracker, self.synthesis.assay, self.config.necessity)
        if not report.required:
            plan = WashPlan(
                method="PDW",
                chip=chip,
                schedule=baseline.copy(),
                washes=[],
                baseline_schedule=baseline,
                solver_status="no-wash-needed",
                notes={"necessity_events": float(report.total_events)},
            )
            return plan

        clusters = cluster_requirements(
            chip,
            report.required,
            merge=self.config.merge_clusters,
            max_path_mm=self.config.max_wash_path_mm,
        )
        removals = baseline.tasks(TaskKind.REMOVAL)
        candidates: Dict[str, List] = {}
        for cluster in clusters:
            pool = candidate_paths(
                chip, sorted(cluster.targets), self.config.max_candidates
            )
            if self.config.enable_integration:
                nearby = [
                    rm.path
                    for rm in removals
                    if rm.start <= cluster.deadline + 10
                    and rm.end >= cluster.release - 10
                ]
                for cand in integration_candidates(chip, sorted(cluster.targets), nearby):
                    if cand not in pool:
                        pool.append(cand)
            if self.config.path_mode == "exact":
                try:
                    exact = exact_wash_path(chip, sorted(cluster.targets))
                    if exact not in pool:
                        pool.insert(0, exact)
                except WashError:
                    pass  # fall back to the greedy pool
            candidates[cluster.id] = pool

        ilp = WashScheduleIlp(chip, baseline, clusters, candidates, self.config)
        outcome = ilp.solve()

        schedule = Schedule()
        absorbed_by: Dict[str, List[str]] = {}
        for rm_id, cluster_id in outcome.absorbed.items():
            absorbed_by.setdefault(cluster_id, []).append(rm_id)
        for task in baseline.tasks():
            if task.id in outcome.absorbed:
                continue
            schedule.add(task.at(outcome.starts[task.id]))

        washes: List[WashOperation] = []
        for cluster in clusters:
            path = outcome.wash_paths[cluster.id]
            start = outcome.wash_starts[cluster.id]
            duration = outcome.wash_durations[cluster.id]
            schedule.add(
                ScheduledTask(
                    id=f"wash:{cluster.id}",
                    kind=TaskKind.WASH,
                    start=start,
                    duration=duration,
                    path=path,
                )
            )
            washes.append(
                WashOperation(
                    id=cluster.id,
                    targets=cluster.targets,
                    path=path,
                    start=start,
                    duration=duration,
                    absorbed_removals=tuple(sorted(absorbed_by.get(cluster.id, []))),
                )
            )

        plan = WashPlan(
            method="PDW",
            chip=chip,
            schedule=schedule,
            washes=washes,
            baseline_schedule=baseline,
            solver_status=outcome.status.value,
            solve_time_s=outcome.solve_time_s,
            notes={
                "ilp_objective": outcome.objective,
                "necessity_events": float(report.total_events),
                "type1_exempt": float(report.type1_exempt),
                "type2_exempt": float(report.type2_exempt),
                "type3_exempt": float(report.type3_exempt),
                "requirements": float(len(report.required)),
            },
        )
        if verify:
            verify_plan(plan)
        return plan


def verify_plan(plan: WashPlan) -> None:
    """Raise :class:`WashError` unless the plan is conflict- and residue-free."""
    conflicts = plan.schedule.conflicts()
    if conflicts:
        raise WashError(f"{plan.method} plan has resource conflicts: {conflicts[:5]}")
    violations = contamination_violations(plan.chip, plan.schedule)
    if violations:
        raise WashError(
            f"{plan.method} plan leaves cross-contamination: "
            + "; ".join(str(v) for v in violations[:5])
        )


def optimize_washes(
    synthesis: SynthesisResult,
    config: PDWConfig = PDWConfig(),
    verify: bool = True,
) -> WashPlan:
    """Convenience wrapper: run PDW on a synthesis result."""
    return PathDriverWash(synthesis, config).run(verify=verify)
