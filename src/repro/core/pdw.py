"""The PathDriver-Wash orchestrator.

Pipeline (Section III, decomposed as described in DESIGN.md §7):

1. **replay** — replay the wash-free baseline schedule and collect
   contamination events (:mod:`repro.contam.tracker`),
2. **necessity** — wash-necessity analysis, Type 1/2/3 exemptions
   (Eqs. 9-11),
3. **clusters** — group the remaining requirements into wash clusters
   (:mod:`repro.core.targets`),
4. **pathgen** — generate candidate port-to-port wash paths per cluster
   (:mod:`repro.core.pathgen`; optionally refined by the exact path ILP of
   Eqs. 12-15),
5. **ilp** — solve the scheduling ILP (Eqs. 1-8, 16-26) selecting wash
   paths and time windows and folding excess removals into washes
   (ψ, Eq. 21),
6. **assemble** — materialize and verify the final wash-aware schedule.

The stages themselves live in :mod:`repro.core.stages`; this module
composes them through a :class:`~repro.pipeline.PipelineRun`, which
optionally serves stage artifacts from a content-addressed
:class:`~repro.pipeline.ArtifactCache` and always records per-stage wall
times, counters and solver statistics into the plan's
:class:`~repro.pipeline.RunReport` (``plan.report`` /
``plan.notes["stage.*"]``).
"""

from __future__ import annotations

from typing import Optional

from repro.contam import ContaminationTracker, contamination_violations
from repro.core.config import PDWConfig
from repro.core.plan import WashPlan
from repro.core.stages import (
    ASSEMBLE_STAGE,
    CLUSTER_STAGE,
    NECESSITY_STAGE,
    PATHGEN_STAGE,
    REPLAY_STAGE,
    SCHEDULE_ILP_STAGE,
    PDWContext,
)
from repro.errors import WashError
from repro.obs.trace import span
from repro.pipeline import ArtifactCache, PipelineRun
from repro.sim.validate import validate_plan
from repro.synth.synthesis import SynthesisResult


class PathDriverWash:
    """PDW wash optimization over a synthesis result.

    Parameters
    ----------
    synthesis:
        The synthesized assay execution (chip + wash-free schedule).
    config:
        PDW knobs; a fresh :class:`PDWConfig` per instance when omitted.
    cache:
        Optional content-addressed artifact cache; stage artifacts are
        served from (and written to) it, surviving across processes.
    tracker:
        Optional pre-computed contamination replay of the same synthesis —
        pass it to share the replay artifact with another pipeline (e.g.
        DAWO on the same benchmark) instead of recomputing it.
    """

    def __init__(
        self,
        synthesis: SynthesisResult,
        config: Optional[PDWConfig] = None,
        cache: Optional[ArtifactCache] = None,
        tracker: Optional[ContaminationTracker] = None,
    ):
        self.synthesis = synthesis
        self.config = config if config is not None else PDWConfig()
        self.cache = cache
        self.tracker = tracker

    # -- pipeline ------------------------------------------------------------------

    def run(self, verify: bool = True) -> WashPlan:
        """Execute the full PDW pipeline and return the wash plan."""
        with span("pdw", assay=self.synthesis.assay.name):
            return self._run(verify)

    def _run(self, verify: bool) -> WashPlan:
        ctx = PDWContext(
            synthesis=self.synthesis, config=self.config, cache=self.cache
        )
        run = PipelineRun(label=f"PDW:{self.synthesis.assay.name}", cache=self.cache)

        if self.tracker is not None:
            ctx.tracker = self.tracker
            run.provided(REPLAY_STAGE.name, REPLAY_STAGE.counters(self.tracker))
        else:
            ctx.tracker = run.run_stage(REPLAY_STAGE, ctx)
        ctx.necessity = run.run_stage(NECESSITY_STAGE, ctx)

        if not ctx.necessity.required:
            return self._finish(no_wash_plan(ctx), run, verify=False)

        ctx.clusters = run.run_stage(CLUSTER_STAGE, ctx)
        ctx.candidates = run.run_stage(PATHGEN_STAGE, ctx).candidates
        ctx.outcome = run.run_stage(SCHEDULE_ILP_STAGE, ctx)
        record_ilp_rows(run, ctx.outcome)
        plan = run.run_stage(ASSEMBLE_STAGE, ctx)
        return self._finish(plan, run, verify=verify)

    def _finish(self, plan: WashPlan, run: PipelineRun, verify: bool) -> WashPlan:
        plan.report = run.report
        plan.notes.update(run.report.flat())
        if verify:
            degradation = getattr(plan, "degradation", None)
            verify_plan(plan, degradation=degradation)
            validate_plan(plan, self.synthesis, degradation=degradation)
        return plan


def record_ilp_rows(run: PipelineRun, outcome) -> None:
    """Report the ILP stage's auxiliary time series after it ran.

    ``ilp.build`` is the model-construction time (surfacing as
    ``pdw.ilp.build`` in merged reports and ``pdw bench``); when the ILP
    stage artifact came from the cache the stored build time belongs to an
    earlier process, so no row is recorded — the value still surfaces
    through the stage's ``build_time_s`` counter.  ``ilp.presolve``
    (surfacing as ``pdw.ilp.presolve``) records the model-reduction pass
    with its fixed/dropped counters under the same cache gating, and
    ``ilp.decompose`` records the component-split solve whenever the
    interaction graph actually separated (components > 1).  Each solver-ladder rung
    attempt then gets its own ``ilp.rung.<rung>`` record, and a raced
    solve adds one ``ilp.race`` record for the whole concurrent race
    (surfacing as the ``pdw.ilp.race`` bench series).  Shared by the
    serial orchestrator above and the suite DAG executor's ILP node.
    """
    last = run.report.stages[-1] if run.report.stages else None
    cached = last is not None and last.stage == "ilp" and last.cached
    if getattr(outcome, "presolve_time_s", 0.0) and not cached:
        run.report.record(
            "ilp.presolve",
            wall_s=outcome.presolve_time_s,
            counters={
                "fixed_binaries": float(outcome.presolve_fixed_binaries),
                "dropped_constraints": float(outcome.presolve_dropped_constraints),
                "dropped_candidates": float(outcome.presolve_dropped_candidates),
            },
            detail=(
                f"fixed {outcome.presolve_fixed_binaries} binaries, dropped "
                f"{outcome.presolve_dropped_constraints} rows, "
                f"{outcome.presolve_dropped_candidates} candidates"
            ),
        )
    if outcome.build_time_s and not cached:
        run.report.record(
            "ilp.build",
            wall_s=outcome.build_time_s,
            detail=outcome.model_stats,
        )
    for att in outcome.attempts:
        counters = {}
        if att.mip_gap is not None:
            counters["mip_gap"] = float(att.mip_gap)
        if att.objective is not None:
            counters["objective"] = float(att.objective)
        run.report.record(
            f"ilp.rung.{att.rung}",
            wall_s=att.wall_s,
            counters=counters,
            detail=f"{att.status}: {att.message}" if att.message else att.status,
        )
    if getattr(outcome, "solver_mode", "ladder") == "race" and outcome.race_wall_s:
        run.report.record(
            "ilp.race",
            wall_s=outcome.race_wall_s,
            counters={"rungs": float(len(outcome.attempts))},
            detail=f"winner: {outcome.rung}",
        )
    if getattr(outcome, "components", 0) > 1 and outcome.decompose_wall_s:
        run.report.record(
            "ilp.decompose",
            wall_s=outcome.decompose_wall_s,
            counters={"components": float(outcome.components)},
            detail=f"{outcome.components} components via {outcome.rung}",
        )


def no_wash_plan(ctx: PDWContext) -> WashPlan:
    """The empty PDW plan for a run whose necessity analysis demands no
    washes — the baseline schedule passes through untouched.  Shared by
    the serial orchestrator above and the suite DAG executor."""
    return WashPlan(
        method="PDW",
        chip=ctx.synthesis.chip,
        schedule=ctx.synthesis.schedule.copy(),
        washes=[],
        baseline_schedule=ctx.synthesis.schedule,
        solver_status="no-wash-needed",
        notes={"necessity_events": float(ctx.necessity.total_events)},
    )


def verify_plan(plan: WashPlan, degradation=None) -> None:
    """Raise :class:`WashError` unless the plan is conflict- and residue-free.

    ``degradation`` (a :class:`~repro.degrade.model.DegradationInfo`)
    waives residue violations at the plan's *reported-uncovered* wash
    targets — a degraded chip may be physically unable to wash those
    nodes, and silently tolerating them anywhere else would hide real
    bugs.  Conflicts are never waived.
    """
    conflicts = plan.schedule.conflicts()
    if conflicts:
        raise WashError(f"{plan.method} plan has resource conflicts: {conflicts[:5]}")
    violations = contamination_violations(plan.chip, plan.schedule)
    if degradation is not None and violations:
        uncovered = frozenset(degradation.uncovered_targets)
        violations = [v for v in violations if v.node not in uncovered]
    if violations:
        raise WashError(
            f"{plan.method} plan leaves cross-contamination: "
            + "; ".join(str(v) for v in violations[:5])
        )


def optimize_washes(
    synthesis: SynthesisResult,
    config: Optional[PDWConfig] = None,
    verify: bool = True,
    cache: Optional[ArtifactCache] = None,
    tracker: Optional[ContaminationTracker] = None,
) -> WashPlan:
    """Convenience wrapper: run PDW on a synthesis result."""
    return PathDriverWash(synthesis, config, cache=cache, tracker=tracker).run(
        verify=verify
    )
