"""Contamination tracking and wash-necessity analysis.

This package implements Section II-A / the :math:`a^1, a^2, a^3, r` logic of
Eqs. (9)-(11):

* :class:`~repro.contam.tracker.ContaminationTracker` replays a schedule and
  records which chip nodes are contaminated by which fluid at what time,
* :func:`~repro.contam.necessity.wash_requirements` classifies every
  contamination event as Type 1/2/3-exempt or as a genuine wash requirement
  with a release time and a deadline,
* :func:`~repro.contam.tracker.contamination_violations` verifies a finished
  wash plan: replaying the final schedule (wash tasks included) must leave
  no transport running over a foreign residue.
"""

from repro.contam.events import ContaminationEvent, NodeUse, WashRequirement
from repro.contam.tracker import ContaminationTracker, contamination_violations
from repro.contam.necessity import (
    NecessityPolicy,
    NecessityReport,
    wash_requirements,
)

__all__ = [
    "ContaminationEvent",
    "ContaminationTracker",
    "NecessityPolicy",
    "NecessityReport",
    "NodeUse",
    "WashRequirement",
    "contamination_violations",
    "wash_requirements",
]
