"""Wash-necessity analysis — Section II-A / Eqs. (9)-(11).

Every contamination event is classified against the *first* subsequent use
of its node (later uses are governed by the residue that first use itself
deposits):

* **consumed** — the use belongs to the same fluid lineage (the operation
  that consumes the delivered input, a co-input of the same mix, or the
  transport carrying the result onward): no wash.
* **Type 1** — the node is never used again: no wash.
* **Type 2** — the use carries the *same* fluid type: no wash.
* **Type 3** — the use is an excess-removal or waste-disposal flow, whose
  fluid is discarded anyway: no wash.
* **required** — otherwise: the node must be washed after the residue
  appears and before the blocking use starts.

The DAWO baseline of [10] performs no Type 2/3 analysis; its policy
(:attr:`NecessityPolicy.REUSE_ONLY`) demands a wash before *any* unrelated
reuse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.assay.graph import SequencingGraph
from repro.contam.events import ContaminationEvent, WashRequirement
from repro.contam.tracker import ContaminationTracker
from repro.schedule.tasks import ScheduledTask, TaskKind


class NecessityPolicy(enum.Enum):
    """How aggressively contamination events are exempted."""

    #: Full Section II-A analysis (PDW).
    PDW = "pdw"
    #: Wash before any unrelated reuse — no Type 2/3 exemptions.
    REUSE_ONLY = "reuse_only"
    #: Wash before any *conflicting* (different-fluid) reuse: Type 2 is
    #: respected and terminal waste disposals are tolerated, but
    #: excess-removal flows get no tolerance (the distinctive part of
    #: PDW's Type 3 analysis is missing).  This models the demand-driven
    #: analysis of the DAWO baseline [10].
    REUSE_CONFLICT = "reuse_conflict"


@dataclass
class NecessityReport:
    """Outcome of classifying every contamination event."""

    required: List[WashRequirement] = field(default_factory=list)
    type1_exempt: int = 0
    type2_exempt: int = 0
    type3_exempt: int = 0
    consumed: int = 0

    @property
    def total_events(self) -> int:
        """Total classified contamination events."""
        return (
            len(self.required)
            + self.type1_exempt
            + self.type2_exempt
            + self.type3_exempt
            + self.consumed
        )

    def summary(self) -> str:
        """One-line count summary."""
        return (
            f"{self.total_events} events: {len(self.required)} require wash, "
            f"{self.type1_exempt} type-1, {self.type2_exempt} type-2, "
            f"{self.type3_exempt} type-3, {self.consumed} consumed"
        )


def _task_lineage(task: ScheduledTask, assay: Optional[SequencingGraph]) -> FrozenSet[str]:
    """Sequencing-graph node ids whose fluid lineage the task belongs to."""
    if task.kind is TaskKind.OPERATION and task.op_id is not None:
        ids = {task.op_id}
        if assay is not None:
            ids.update(assay.inputs_of(task.op_id))
        return frozenset(ids)
    if task.edge is not None:
        return frozenset(task.edge)
    return frozenset()


def wash_requirements(
    tracker: ContaminationTracker,
    assay: Optional[SequencingGraph] = None,
    policy: NecessityPolicy = NecessityPolicy.PDW,
) -> NecessityReport:
    """Classify every contamination event of the tracked schedule.

    ``assay`` enriches lineage detection for operations whose producer sits
    on the same device (no transport edge connects them in the schedule).
    """
    lineages: Dict[str, FrozenSet[str]] = {
        task.id: _task_lineage(task, assay) for task in tracker.schedule.tasks()
    }
    report = NecessityReport()
    for event in tracker.events():
        _classify(event, tracker, lineages, policy, report)
    return report


def _classify(
    event: ContaminationEvent,
    tracker: ContaminationTracker,
    lineages: Dict[str, FrozenSet[str]],
    policy: NecessityPolicy,
    report: NecessityReport,
) -> None:
    event_lineage = lineages.get(event.source_task, frozenset())
    for use in tracker.uses_after(event.node, event.time):
        if use.task_id == event.source_task:
            continue
        if event_lineage & lineages.get(use.task_id, frozenset()):
            report.consumed += 1
            return
        if policy is NecessityPolicy.PDW and use.tolerates_residue:
            report.type3_exempt += 1
            return
        if (
            policy is NecessityPolicy.REUSE_CONFLICT
            and use.kind in (TaskKind.WASTE, TaskKind.WASH)
        ):
            report.type3_exempt += 1
            return
        if policy is not NecessityPolicy.REUSE_ONLY and use.fluid_type == event.fluid_type:
            report.type2_exempt += 1
            return
        report.required.append(
            WashRequirement(
                node=event.node,
                fluid_type=event.fluid_type,
                contaminated_at=event.time,
                deadline=use.start,
                source_task=event.source_task,
                blocking_task=use.task_id,
            )
        )
        return
    report.type1_exempt += 1
