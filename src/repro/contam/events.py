"""Event records used by the contamination engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.tasks import TaskKind


@dataclass(frozen=True)
class ContaminationEvent:
    """A chip node becoming contaminated.

    ``time`` is the paper's :math:`t^c_{x,y}` — the completion tick of the
    task whose fluid leaves the residue.
    """

    node: str
    fluid_type: str
    time: int
    source_task: str


@dataclass(frozen=True)
class NodeUse:
    """One task occupying one chip node during ``[start, end)``."""

    task_id: str
    kind: TaskKind
    start: int
    end: int
    fluid_type: str | None

    @property
    def tolerates_residue(self) -> bool:
        """Whether this use is harmless on a contaminated node.

        Waste disposals and excess removals carry fluid that is being
        discarded (Type 3), and wash flows are buffer by definition.
        """
        return self.kind in (TaskKind.WASTE, TaskKind.REMOVAL, TaskKind.WASH)


@dataclass(frozen=True)
class WashRequirement:
    """A node that must be washed inside a time window.

    Attributes
    ----------
    node:
        The contaminated chip node.
    fluid_type:
        The residue's contamination type.
    contaminated_at:
        Tick at which the residue appears (wash cannot start earlier;
        the :math:`t_{j,e}` bound of Eq. 16).
    deadline:
        Start tick of the first conflicting use (wash must finish by then;
        the :math:`t_{j,s}` bound of Eq. 16).  Deadlines refer to the
        *baseline* schedule — the optimizers re-derive them against their
        re-timed task variables.
    source_task:
        Id of the task that left the residue.
    blocking_task:
        Id of the first task that would be corrupted without a wash.
    """

    node: str
    fluid_type: str
    contaminated_at: int
    deadline: int
    source_task: str
    blocking_task: str

    def __post_init__(self) -> None:
        if self.deadline < self.contaminated_at:
            raise ValueError(
                f"wash window for {self.node!r} is empty: "
                f"[{self.contaminated_at}, {self.deadline}]"
            )
