"""Replay a schedule and track per-node contamination over time."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arch.chip import Chip
from repro.assay.fluids import BUFFER_TYPE
from repro.contam.events import ContaminationEvent, NodeUse
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind


class ContaminationTracker:
    """Chronological node-use and contamination index of a schedule.

    The tracker never judges *necessity* (that is
    :mod:`repro.contam.necessity`); it only answers which tasks touch which
    nodes when, and which residues each task leaves behind.
    """

    def __init__(self, chip: Chip, schedule: Schedule):
        self.chip = chip
        self.schedule = schedule
        self._uses: Dict[str, List[NodeUse]] = {}
        self._events: List[ContaminationEvent] = []
        self._replay()

    # -- construction -----------------------------------------------------------

    def _replay(self) -> None:
        for task in self.schedule.tasks():
            use = NodeUse(task.id, task.kind, task.start, task.end, task.fluid_type)
            for node in self._washable_nodes(task):
                self._uses.setdefault(node, []).append(use)
            self._events.extend(self._residues(task))
        for uses in self._uses.values():
            uses.sort(key=lambda u: (u.start, u.end, u.task_id))
        self._events.sort(key=lambda e: (e.time, e.node))

    def _washable_nodes(self, task: ScheduledTask) -> List[str]:
        """Nodes of the task that can hold residue (ports flush clean)."""
        return [n for n in task.occupied_nodes if not self.chip.is_port(n)]

    def _residues(self, task: ScheduledTask) -> List[ContaminationEvent]:
        """Contamination events the task produces at its completion."""
        if task.kind is TaskKind.WASH or task.fluid_type in (None, BUFFER_TYPE):
            return []
        return [
            ContaminationEvent(node, task.fluid_type, task.end, task.id)
            for node in self._washable_nodes(task)
        ]

    # -- queries -----------------------------------------------------------------

    def events(self) -> List[ContaminationEvent]:
        """All contamination events in time order."""
        return list(self._events)

    def uses_of(self, node: str) -> List[NodeUse]:
        """Chronological uses of ``node``."""
        return list(self._uses.get(node, ()))

    def uses_after(self, node: str, time: int) -> List[NodeUse]:
        """Uses of ``node`` starting at or after ``time``."""
        return [u for u in self._uses.get(node, ()) if u.start >= time]

    def contaminated_nodes(self) -> List[str]:
        """Distinct nodes that receive residue at least once (``R_c``)."""
        return sorted({e.node for e in self._events})


@dataclass(frozen=True)
class ContaminationViolation:
    """A transport ran over a foreign residue — the wash plan is wrong."""

    task_id: str
    node: str
    residue_type: str
    fluid_type: str
    time: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"task {self.task_id!r} crossed node {self.node!r} at t={self.time} "
            f"carrying {self.fluid_type!r} over residue {self.residue_type!r}"
        )


def contamination_violations(chip: Chip, schedule: Schedule) -> List[ContaminationViolation]:
    """Verify a final schedule (washes included) leaves no cross-contamination.

    Replays all tasks in time order, maintaining each node's current
    residue.  Wash tasks clear the residue of every node they traverse;
    waste/removal flows tolerate residue (their fluid is discarded) but
    still deposit their own.  A TRANSPORT crossing a node that holds a
    *different* residue from an *unrelated* fluid lineage is a violation —
    two inputs bound for the same mixing operation are related and may meet
    freely.
    """
    residue: Dict[str, tuple] = {}  # node -> (fluid_type, lineage)
    violations: List[ContaminationViolation] = []

    def ordered(task: ScheduledTask) -> tuple:
        return (task.start, task.end, task.id)

    def lineage(task: ScheduledTask) -> frozenset:
        if task.kind is TaskKind.OPERATION and task.op_id is not None:
            return frozenset({task.op_id})
        if task.edge is not None:
            return frozenset(task.edge)
        return frozenset()

    for task in sorted(schedule.tasks(), key=ordered):
        nodes = [n for n in task.occupied_nodes if not chip.is_port(n)]
        task_lineage = lineage(task)
        if task.kind is TaskKind.TRANSPORT:
            for node in nodes:
                current = residue.get(node)
                if current is None or task.fluid_type is None:
                    continue
                res_type, res_lineage = current
                if (
                    res_type != task.fluid_type
                    and res_type != BUFFER_TYPE
                    and not (res_lineage & task_lineage)
                ):
                    violations.append(
                        ContaminationViolation(
                            task.id, node, res_type, task.fluid_type, task.start
                        )
                    )
        if task.kind is TaskKind.WASH or task.fluid_type == BUFFER_TYPE:
            for node in nodes:
                residue.pop(node, None)
        elif task.fluid_type is not None:
            for node in nodes:
                residue[node] = (task.fluid_type, task_lineage)
    return violations
