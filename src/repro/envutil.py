"""Warn-not-crash parsing of numeric ``REPRO_*`` environment knobs.

Several subsystems take integer tuning knobs from the environment —
``REPRO_SUITE_WORKERS`` (suite fan-out), ``REPRO_PATHGEN_WORKERS``
(per-cluster candidate generation), ``REPRO_SCHED_WORKERS`` (the stage-DAG
scheduler) and ``REPRO_CACHE_MAX_BYTES`` (artifact-cache size bound).
They share one failure policy: a malformed value must never crash whatever
pipeline happened to read it first.  :func:`env_int` is the single
implementation of that policy; a bad value raises a :class:`RuntimeWarning`
naming the variable and falls back to ``default``.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

#: Binary multipliers accepted when ``suffixes=True`` (cache sizes).
_SUFFIXES = (("K", 2**10), ("M", 2**20), ("G", 2**30))


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
    suffixes: bool = False,
) -> Optional[int]:
    """Parse ``$name`` as an integer, warning instead of crashing on junk.

    Returns ``default`` when the variable is unset, empty, malformed, or
    below ``minimum``.  ``suffixes=True`` additionally accepts a trailing
    (case-insensitive) ``K``/``M``/``G`` binary multiplier, the
    ``REPRO_CACHE_MAX_BYTES`` convention.  Every rejection path warns with
    a :class:`RuntimeWarning` whose message contains ``name``, so callers
    (and their tests) can match on the variable.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    scale = 1
    text = raw
    if suffixes:
        upper = text.upper()
        for suffix, factor in _SUFFIXES:
            if upper.endswith(suffix):
                scale, text = factor, text[:-1]
                break
    try:
        value = int(text) * scale
    except ValueError:
        hint = "an integer byte count with an optional K/M/G suffix" if suffixes else "an integer"
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (expected {hint})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if minimum is not None and value < minimum:
        warnings.warn(
            f"ignoring out-of-range {name}={raw!r} (must be >= {minimum})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return value
