"""Warn-not-crash parsing and precedence of ``REPRO_*`` environment knobs.

Several subsystems take integer tuning knobs from the environment —
``REPRO_SUITE_WORKERS`` (suite fan-out), ``REPRO_PATHGEN_WORKERS``
(per-cluster candidate generation), ``REPRO_SCHED_WORKERS`` (the stage-DAG
scheduler) and ``REPRO_CACHE_MAX_BYTES`` (artifact-cache size bound).
They share one failure policy: a malformed value must never crash whatever
pipeline happened to read it first.  :func:`env_int` is the single
implementation of that policy; a bad value raises a :class:`RuntimeWarning`
naming the variable and falls back to ``default``.

Knobs that exist both as a CLI flag and as an environment variable
(``--cache DIR`` vs ``$REPRO_CACHE_DIR``, ``--sched-workers`` vs
``$REPRO_SCHED_WORKERS``) share one precedence rule, implemented once by
:func:`pick`: an explicit flag beats the environment beats the built-in
default.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, TypeVar

T = TypeVar("T")

#: Binary multipliers accepted when ``suffixes=True`` (cache sizes).
_SUFFIXES = (("K", 2**10), ("M", 2**20), ("G", 2**30))


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
    suffixes: bool = False,
) -> Optional[int]:
    """Parse ``$name`` as an integer, warning instead of crashing on junk.

    Returns ``default`` when the variable is unset, empty, malformed, or
    below ``minimum``.  ``suffixes=True`` additionally accepts a trailing
    (case-insensitive) ``K``/``M``/``G`` binary multiplier, the
    ``REPRO_CACHE_MAX_BYTES`` convention.  Every rejection path warns with
    a :class:`RuntimeWarning` whose message contains ``name``, so callers
    (and their tests) can match on the variable.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    scale = 1
    text = raw
    if suffixes:
        upper = text.upper()
        for suffix, factor in _SUFFIXES:
            if upper.endswith(suffix):
                scale, text = factor, text[:-1]
                break
    try:
        value = int(text) * scale
    except ValueError:
        hint = "an integer byte count with an optional K/M/G suffix" if suffixes else "an integer"
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (expected {hint})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if minimum is not None and value < minimum:
        warnings.warn(
            f"ignoring out-of-range {name}={raw!r} (must be >= {minimum})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return value


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """``$name`` stripped of whitespace, or ``default`` when unset/empty."""
    raw = os.environ.get(name, "").strip()
    return raw if raw else default


def pick(explicit: Optional[T], env_name: str, default: T) -> T:
    """Shared CLI/env/default precedence for dual-surface knobs.

    An explicit (non-``None``) value — typically a CLI flag — always wins;
    otherwise a non-empty ``$env_name`` is used; otherwise ``default``.
    Every knob that exists both as a flag and as a ``REPRO_*`` variable
    must resolve through here so the precedence cannot drift between
    subcommands (``pdw cache --cache`` vs ``pdw serve --cache``).
    """
    if explicit is not None:
        return explicit
    env = env_str(env_name)
    if env is not None:
        return env  # type: ignore[return-value]
    return default
