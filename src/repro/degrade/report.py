"""``pdw report degrade`` — the robustness table from journaled matrix runs.

Every :func:`~repro.degrade.suite.run_degrade_matrix` cell appends an
``"event": "degrade"`` record to the suite journal; this report reads
them back (latest record per benchmark × scenario wins, so re-runs
supersede stale rows) and renders the robustness table without
re-executing anything — same contract as ``pdw report failures``.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.reporting import render_table
from repro.pipeline import default_cache
from repro.sched import journal as sched_journal


def degrade_report(journal_path: Optional[Path] = None) -> str:
    """Render the journaled degradation-matrix history as text."""
    if journal_path is None:
        from repro.experiments.supervisor import default_journal_path

        journal_path = default_journal_path(default_cache())
    path = Path(journal_path)
    records = sched_journal.read_records(path)
    latest: Dict[Tuple[str, str], dict] = {}
    for record in records:
        if record.get("event") != "degrade":
            continue
        key = (str(record.get("benchmark", "?")), str(record.get("scenario", "?")))
        latest[key] = record  # journal order: later records supersede

    title = f"Degradation robustness table ({path})\n"
    if not latest:
        return title + "no degrade runs on record\n"

    headers = [
        "When (UTC)", "Benchmark", "Scenario", "Outcome",
        "Coverage", "Dead", "Washes", "Repairs", "Detail",
    ]
    rows: List[List[str]] = []
    for key in sorted(latest):
        record = latest[key]
        when = datetime.fromtimestamp(
            float(record.get("ts", 0.0)), tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M:%S")
        coverage = float(record.get("coverage", 1.0))
        detail = str(record.get("message", ""))
        uncovered = record.get("uncovered") or []
        if not detail and uncovered:
            detail = "uncovered: " + ",".join(str(n) for n in uncovered[:4])
        if len(detail) > 48:
            detail = detail[:45] + "..."
        rows.append(
            [
                when,
                key[0],
                key[1],
                str(record.get("outcome", "?")),
                f"{100.0 * coverage:.0f}%",
                str(len(record.get("dead") or [])),
                str(record.get("washes", 0)),
                str(record.get("repair_rounds", 0)),
                detail,
            ]
        )
    summary = _summary_line(latest)
    return title + render_table(headers, rows) + "\n" + summary


def _summary_line(latest: Dict[Tuple[str, str], dict]) -> str:
    counts: Dict[str, int] = {}
    for record in latest.values():
        outcome = str(record.get("outcome", "?"))
        counts[outcome] = counts.get(outcome, 0) + 1
    parts = [f"{outcome}={counts[outcome]}" for outcome in sorted(counts)]
    return f"{len(latest)} cells: " + ", ".join(parts) + "\n"
