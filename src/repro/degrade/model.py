"""Deterministic chip-degradation model.

Real continuous-flow chips lose parts in the field: channels clog, control
valves stick shut, devices stop actuating.  This module models such damage
*without mutating the chip*: a :class:`DegradationSpec` (parsed from the
``--degrade`` CLI spec / ``PDWConfig.degrade``) deterministically samples a
set of **dead nodes** from the chip, and the PDW pipeline threads that set
through clustering, candidate generation and the ILP as routing
avoid-sets.  The baseline schedule stays physically valid by construction:
sampled dead nodes are drawn only from nodes *no baseline task touches*
(explicit ``dead=`` nodes — the online fault-injection case — are exempt
from that rule, which is exactly what makes them repair scenarios).

Spec grammar (one scenario)::

    light | moderate | heavy                  # presets
    channels=N[:valves=N][:devices=N][:seed=N][:dead=n1+n2]

``pdw suite --degrade`` accepts a comma-separated list of scenarios (the
degradation *matrix*).  The rendered :meth:`DegradationSpec.token` is the
canonical form and doubles as the degradation component of every cache
key: two configs with the same token share degraded artifacts, and no
degraded artifact can ever collide with a healthy one.

This module deliberately imports only :mod:`repro.arch` and the error
hierarchy so that :mod:`repro.core.config` and :mod:`repro.core.stages`
can import it without cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.arch.chip import Chip
from repro.arch.control import ControlLayer
from repro.errors import DegradationError

#: Named degradation presets (the matrix rungs the docs and CI use).
PRESETS: Dict[str, str] = {
    "light": "channels=1",
    "moderate": "channels=2:valves=1",
    "heavy": "channels=3:valves=2:devices=1",
}

#: Dead-node kind labels, in token order.
KINDS = ("channel", "valve", "device")


@dataclass(frozen=True)
class DegradationSpec:
    """One parsed degradation scenario (counts + seed + explicit nodes)."""

    channels: int = 0
    valves: int = 0
    devices: int = 0
    seed: int = 0
    #: Explicitly failed nodes (the online repair loop adds these).
    dead: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if min(self.channels, self.valves, self.devices) < 0:
            raise DegradationError("degradation counts must be non-negative")
        if not (self.channels or self.valves or self.devices or self.dead):
            raise DegradationError(
                "a degradation spec must fail at least one channel/valve/"
                "device or name explicit dead= nodes"
            )

    def token(self) -> str:
        """Canonical spec string (stable: doubles as cache-key material)."""
        parts: List[str] = []
        for key in ("channels", "valves", "devices"):
            count = getattr(self, key)
            if count:
                parts.append(f"{key}={count}")
        if self.channels or self.valves or self.devices:
            parts.append(f"seed={self.seed}")
        if self.dead:
            parts.append("dead=" + "+".join(sorted(self.dead)))
        return ":".join(parts)

    def with_dead(self, nodes: Iterable[str]) -> "DegradationSpec":
        """This spec with ``nodes`` added to the explicit dead set."""
        merged = tuple(sorted(set(self.dead) | set(nodes)))
        return replace(self, dead=merged)


def parse_spec(text: str) -> DegradationSpec:
    """Parse one scenario: a preset name or ``key=value`` pairs."""
    text = text.strip()
    if not text:
        raise DegradationError("empty degradation spec")
    text = PRESETS.get(text, text)
    fields: Dict[str, object] = {}
    for pair in text.split(":"):
        if "=" not in pair:
            raise DegradationError(
                f"malformed degradation field {pair!r} (expected key=value)"
            )
        key, _, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "dead":
            nodes = tuple(sorted({n for n in value.split("+") if n}))
            if not nodes:
                raise DegradationError("dead= needs at least one node")
            fields["dead"] = nodes
        elif key in ("channels", "valves", "devices", "seed"):
            try:
                fields[key] = int(value)
            except ValueError:
                raise DegradationError(
                    f"degradation field {key}={value!r} is not an integer"
                ) from None
        else:
            raise DegradationError(f"unknown degradation field {key!r}")
    return DegradationSpec(**fields)  # type: ignore[arg-type]


def parse_matrix(text: str) -> List[DegradationSpec]:
    """Parse a comma-separated scenario list (the ``--degrade`` matrix)."""
    specs = [parse_spec(part) for part in text.split(",") if part.strip()]
    if not specs:
        raise DegradationError("empty degradation matrix")
    return specs


@dataclass(frozen=True)
class Degradation:
    """A spec resolved against one chip: the concrete dead-node set."""

    spec: DegradationSpec
    channels: Tuple[str, ...] = ()
    valves: Tuple[str, ...] = ()
    devices: Tuple[str, ...] = ()
    explicit: Tuple[str, ...] = ()

    @property
    def dead(self) -> FrozenSet[str]:
        """Every failed node, whatever its kind."""
        return frozenset(self.channels) | frozenset(self.valves) | \
            frozenset(self.devices) | frozenset(self.explicit)

    def by_kind(self) -> Dict[str, Tuple[str, ...]]:
        return {
            "channel": self.channels,
            "valve": self.valves,
            "device": self.devices,
            "explicit": self.explicit,
        }


def _used_nodes(schedule) -> FrozenSet[str]:
    """Every chip node a baseline task touches (paths + bound devices)."""
    used = set()
    for task in schedule.tasks():
        used.update(task.path or ())
        if task.device is not None:
            used.add(task.device)
    return frozenset(used)


def _sample(pool: List[str], count: int, seed: int, chip: str, kind: str) -> List[str]:
    """Deterministically sample up to ``count`` nodes from ``pool``.

    Seeded by (seed, chip name, kind) so every worker count, process and
    platform draws the same nodes; requesting more than available takes
    the whole pool rather than failing.
    """
    pool = sorted(pool)
    if count >= len(pool):
        return pool
    rng = random.Random(f"{seed}:{chip}:{kind}")
    return sorted(rng.sample(pool, count))


def derive(chip: Chip, schedule, spec: DegradationSpec) -> Degradation:
    """Resolve ``spec`` against ``chip`` into a concrete dead-node set.

    Sampled nodes come only from nodes unused by the baseline
    ``schedule`` — the assay itself survives the damage; only washing has
    to route around it.  A stuck valve is conservatively modeled as its
    unused channel-side junction node going dead (the membrane blocks
    every flow through that junction).  Explicit ``dead=`` nodes are
    validated against the chip but may be *used* nodes — those are the
    online repair scenarios.
    """
    used = _used_nodes(schedule)
    ports = frozenset(chip.flow_ports) | frozenset(chip.waste_ports)

    for node in spec.dead:
        if node not in chip.graph.nodes:
            raise DegradationError(f"dead= names unknown chip node {node!r}")
        if node in ports:
            raise DegradationError(f"cannot fail port {node!r} (chip boundary)")

    channel_pool = [
        n for n in chip.channel_nodes if n not in used and n not in spec.dead
    ]
    channels = _sample(channel_pool, spec.channels, spec.seed, chip.name, "channel")

    taken = set(channels) | set(spec.dead)
    valve_pool = {
        n
        for valve in ControlLayer(chip).valves.values()
        for n in valve.edge
        if n not in ports and not chip.is_device(n)
        and n not in used and n not in taken
    }
    valves = _sample(sorted(valve_pool), spec.valves, spec.seed, chip.name, "valve")

    taken |= set(valves)
    device_pool = [
        d for d in chip.devices if d not in used and d not in taken
    ]
    devices = _sample(device_pool, spec.devices, spec.seed, chip.name, "device")

    return Degradation(
        spec=spec,
        channels=tuple(channels),
        valves=tuple(valves),
        devices=tuple(devices),
        explicit=spec.dead,
    )


@dataclass(frozen=True)
class DegradationInfo:
    """Plan-facing degradation summary (embedded in plan JSON).

    ``uncovered_targets`` are required wash targets no degraded
    port-to-port path can reach — the plan's coverage gaps, reported
    (never silently dropped) and exempted from contamination
    verification at exactly those nodes.
    """

    spec: str
    dead_channels: Tuple[str, ...] = ()
    dead_valves: Tuple[str, ...] = ()
    dead_devices: Tuple[str, ...] = ()
    dead_explicit: Tuple[str, ...] = ()
    uncovered_targets: Tuple[str, ...] = ()
    required_targets: int = 0

    @property
    def dead(self) -> FrozenSet[str]:
        return frozenset(self.dead_channels) | frozenset(self.dead_valves) | \
            frozenset(self.dead_devices) | frozenset(self.dead_explicit)

    @property
    def coverage(self) -> float:
        """Fraction of required wash targets the plan still washes."""
        if not self.required_targets:
            return 1.0
        covered = self.required_targets - len(self.uncovered_targets)
        return covered / self.required_targets

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "dead_channels": list(self.dead_channels),
            "dead_valves": list(self.dead_valves),
            "dead_devices": list(self.dead_devices),
            "dead_explicit": list(self.dead_explicit),
            "uncovered_targets": list(self.uncovered_targets),
            "required_targets": self.required_targets,
            "coverage": round(self.coverage, 4),
        }


def info_from(degradation: Degradation, uncovered: Iterable[str], required: int) -> DegradationInfo:
    """Build the plan-facing summary from a resolved degradation."""
    return DegradationInfo(
        spec=degradation.spec.token(),
        dead_channels=degradation.channels,
        dead_valves=degradation.valves,
        dead_devices=degradation.devices,
        dead_explicit=degradation.explicit,
        uncovered_targets=tuple(sorted(uncovered)),
        required_targets=required,
    )
