"""Online fault detection and plan repair (detect → replan loop).

The static matrix (:mod:`repro.degrade.model`) answers "can we still wash
on a chip that shipped broken?".  This module answers the harder runtime
question: a channel fails *while the plan is executing*.  The loop:

1. **inject** — a :class:`ChannelFailure` marks one node dead from a
   failure tick (picked deterministically by :func:`pick_online_fault`,
   or supplied as ``node@tick``),
2. **detect** — the :class:`~repro.sim.executor.ScheduleExecutor` replays
   the plan with the dead-node monitor armed; the first
   ``dead_node_traversed`` anomaly is the first violated interval,
3. **replan** — the failed node joins the config's degradation spec
   (``dead=`` in the token), and :func:`~repro.core.pdw.optimize_washes`
   re-runs: only clusters whose candidate pools touch the node regenerate
   (the pathgen stage reuses healthy pools verbatim), and the ILP
   warm-starts from the healthy incumbent via the structure-digest
   fallback,
4. **re-validate** — the repaired plan replays with the *actual* failure
   tick (tasks that finished on the node before it died are legitimately
   unaffected); remaining violations iterate the loop.

A violated interval belonging to a *baseline* task (not a wash) is
unrepairable — washing cannot reroute the assay itself — and is reported
as ``infeasible`` rather than retried.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import PDWConfig
from repro.core.pdw import optimize_washes
from repro.core.plan import WashPlan
from repro.degrade.model import DegradationSpec, parse_spec
from repro.errors import DegradationError, DegradedInfeasibleError, WashError
from repro.obs.metrics import registry
from repro.obs.trace import span
from repro.schedule.tasks import TaskKind
from repro.sim.events import SimEvent, SimEventKind
from repro.sim.executor import ScheduleExecutor
from repro.sim.validate import degraded_validation_problems
from repro.synth.synthesis import SynthesisResult

#: Upper bound on detect→replan rounds before declaring defeat.  One
#: round repairs a single-node failure; the headroom covers repairs whose
#: rerouted washes themselves get caught by the monitor.
MAX_ROUNDS = 4

#: Bucket bounds (seconds) for the repair-latency histogram.
REPAIR_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)


@dataclass(frozen=True)
class ChannelFailure:
    """One injected fault: ``node`` stops conducting at tick ``time``."""

    node: str
    time: int

    def __str__(self) -> str:
        return f"{self.node}@{self.time}"


@dataclass(frozen=True)
class RepairRecord:
    """One detect→replan round (embedded in plan JSON as ``repairs``)."""

    round: int
    node: str
    fail_time: int
    #: Task owning the first violated interval.
    detected_task: str
    #: The violated interval itself.
    window: Tuple[Optional[int], Optional[int]]
    #: ``replanned`` | ``clean`` | ``infeasible``.
    outcome: str
    warm_started: bool = False
    rung: str = ""
    wall_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "round": self.round,
            "node": self.node,
            "fail_time": self.fail_time,
            "detected_task": self.detected_task,
            "window": list(self.window),
            "outcome": self.outcome,
            "warm_started": self.warm_started,
            "rung": self.rung,
            "wall_s": round(self.wall_s, 6),
        }


@dataclass
class RepairResult:
    """Outcome of one online fault scenario."""

    #: ``repaired`` (full coverage, validator-clean) | ``degraded``
    #: (validator-clean with reported coverage gaps) | ``infeasible``.
    status: str
    plan: WashPlan
    failure: ChannelFailure
    records: Tuple[RepairRecord, ...] = ()
    detail: str = ""


def parse_fault(text: str, plan: WashPlan, synthesis: SynthesisResult) -> ChannelFailure:
    """Resolve a CLI fault spec: ``auto`` or ``node@tick``."""
    text = text.strip()
    if text in ("", "auto"):
        fault = pick_online_fault(plan, synthesis)
        if fault is None:
            raise DegradationError(
                "cannot auto-pick an online fault: no wash path has a "
                "non-port node free of later baseline traffic"
            )
        return fault
    node, sep, tick = text.partition("@")
    if not sep:
        raise DegradationError(
            f"malformed online fault {text!r} (expected 'auto' or 'node@tick')"
        )
    if node not in synthesis.chip.graph.nodes:
        raise DegradationError(f"online fault names unknown chip node {node!r}")
    try:
        when = int(tick)
    except ValueError:
        raise DegradationError(
            f"online fault tick {tick!r} is not an integer"
        ) from None
    return ChannelFailure(node=node, time=when)


def pick_online_fault(plan: WashPlan, synthesis: SynthesisResult) -> Optional[ChannelFailure]:
    """Deterministically pick a *repairable* mid-execution fault.

    Walks washes latest-first and returns the first non-port wash-path
    node that no baseline task occupies at or after the failure tick
    (one tick before the wash starts).  Such a fault violates only wash
    intervals, so the repair loop has something to fix — exactly the
    scenario the CI degrade job pins.  Returns ``None`` when the plan
    has no washes (nothing to break that washing could repair).
    """
    chip = plan.chip
    baseline_tasks = [
        t for t in plan.schedule.tasks() if t.kind is not TaskKind.WASH
    ]
    for wash in sorted(plan.washes, key=lambda w: (-w.start, w.id)):
        fail_at = max(1, wash.start - 1)
        for node in wash.path:
            if chip.is_port(node):
                continue
            blocked = any(
                task.end > fail_at
                and (node in (task.path or ()) or task.device == node)
                for task in baseline_tasks
            )
            if not blocked:
                return ChannelFailure(node=node, time=fail_at)
    return None


def detect_first_violation(
    plan: WashPlan, synthesis: SynthesisResult, failure: ChannelFailure
) -> Optional[SimEvent]:
    """The first interval violated by ``failure``, or ``None`` if clean.

    Replays the schedule through the executor with the dead-node monitor
    armed at the failure tick; the earliest ``dead_node_traversed``
    anomaly (by start tick, then task id) is the detection the repair
    loop acts on.
    """
    with span("degrade.detect", node=failure.node, tick=failure.time) as sp:
        report = ScheduleExecutor(
            synthesis, plan.schedule, dead_nodes={failure.node: failure.time}
        ).run()
        hits = [
            e
            for e in report.anomalies
            if e.kind is SimEventKind.DEAD_NODE_TRAVERSED
        ]
        sp.set("violations", len(hits))
        if not hits:
            return None
        first = min(hits, key=lambda e: (e.time, e.task_id))
        registry().counter("pdw_degrade_detections_total").inc()
        return first


def _spec_with_node(config: PDWConfig, node: str) -> DegradationSpec:
    """The config's degradation spec extended with the failed node."""
    if config.degrade:
        return parse_spec(config.degrade).with_dead([node])
    return DegradationSpec(dead=(node,))


def _plan_status(plan: WashPlan) -> str:
    """``repaired`` or ``degraded`` from the plan's coverage."""
    info = getattr(plan, "degradation", None)
    if info is not None and info.coverage < 1.0:
        return "degraded"
    return "repaired"


def repair_plan(
    plan: WashPlan,
    synthesis: SynthesisResult,
    config: Optional[PDWConfig] = None,
    failure: Optional[ChannelFailure] = None,
    cache=None,
) -> RepairResult:
    """Run the online detect→replan loop for one injected fault.

    Returns a :class:`RepairResult` whose plan is validator-clean for
    ``repaired``/``degraded`` statuses; ``infeasible`` keeps the last
    plan attempted with the unrepairable violation in ``detail``.  The
    final plan carries the round history on ``plan.repairs``.
    """
    config = config if config is not None else PDWConfig()
    if failure is None:
        failure = pick_online_fault(plan, synthesis)
        if failure is None:
            return RepairResult(
                status="repaired",
                plan=plan,
                failure=ChannelFailure("", -1),
                detail="plan has no washes; nothing to repair",
            )
    reg = registry()
    reg.counter("pdw_degrade_faults_injected_total").inc()

    records: List[RepairRecord] = []
    current = plan
    status = "infeasible"
    detail = ""
    started = _time.perf_counter()
    with span("degrade.repair", node=failure.node, tick=failure.time) as sp:
        for round_no in range(1, MAX_ROUNDS + 1):
            violation = detect_first_violation(current, synthesis, failure)
            if violation is None:
                status = _plan_status(current) if records else "repaired"
                break
            task = current.schedule.get(violation.task_id)
            window = (task.start, task.end)
            if task.kind is not TaskKind.WASH:
                detail = (
                    f"baseline task {task.id!r} occupies {failure.node} in "
                    f"[{task.start}, {task.end}); washing cannot reroute it"
                )
                records.append(
                    RepairRecord(
                        round=round_no,
                        node=failure.node,
                        fail_time=failure.time,
                        detected_task=task.id,
                        window=window,
                        outcome="infeasible",
                    )
                )
                status = "infeasible"
                break
            round_started = _time.perf_counter()
            spec = _spec_with_node(config, failure.node)
            repaired_config = dataclasses.replace(config, degrade=spec.token())
            try:
                current = optimize_washes(
                    synthesis, repaired_config, verify=False, cache=cache
                )
            except (DegradedInfeasibleError, WashError) as exc:
                detail = f"replan failed: {exc}"
                records.append(
                    RepairRecord(
                        round=round_no,
                        node=failure.node,
                        fail_time=failure.time,
                        detected_task=task.id,
                        window=window,
                        outcome="infeasible",
                        wall_s=_time.perf_counter() - round_started,
                    )
                )
                status = "infeasible"
                break
            records.append(
                RepairRecord(
                    round=round_no,
                    node=failure.node,
                    fail_time=failure.time,
                    detected_task=task.id,
                    window=window,
                    outcome="replanned",
                    warm_started=bool(current.notes.get("stage.ilp.warm_started")),
                    rung=current.solver_rung,
                    wall_s=_time.perf_counter() - round_started,
                )
            )
        else:
            detail = f"violations persisted after {MAX_ROUNDS} repair rounds"

        if status in ("repaired", "degraded") and records:
            # The repaired plan must replay cleanly against the *actual*
            # failure tick — tasks done with the node before it died are
            # fine, everything else is a real problem.
            info = getattr(current, "degradation", None)
            uncovered = frozenset(info.uncovered_targets) if info else frozenset()
            problems, _ = degraded_validation_problems(
                current, synthesis, {failure.node: failure.time}, uncovered
            )
            if problems:
                status = "infeasible"
                detail = f"repaired plan fails validation: {problems[0]}"

        wall = _time.perf_counter() - started
        sp.set("status", status)
        sp.set("rounds", len(records))
        reg.counter("pdw_degrade_repairs_total", outcome=status).inc()
        reg.histogram("pdw_degrade_repair_seconds", buckets=REPAIR_BUCKETS).observe(wall)

    current.repairs = tuple(records)
    return RepairResult(
        status=status,
        plan=current,
        failure=failure,
        records=tuple(records),
        detail=detail,
    )
