"""Fault-adaptive washing on degraded chips.

Two modes (DESIGN.md §14):

* **static** — :mod:`repro.degrade.model` deterministically samples dead
  channels / stuck valves / failed devices per chip, and
  :mod:`repro.degrade.suite` runs the benchmark × scenario matrix that
  ``pdw suite --degrade`` exposes;
* **online** — :mod:`repro.degrade.repair` injects a channel failure
  mid-execution, detects the first violated interval with the
  :class:`~repro.sim.executor.ScheduleExecutor` monitor and replans
  around the dead node until the plan validates or is proven infeasible.

Only the model symbols are re-exported here: the repair/suite modules
import :mod:`repro.core`, which itself imports this package's model —
re-exporting them from ``__init__`` would create an import cycle.
"""

from repro.degrade.model import (
    KINDS,
    PRESETS,
    Degradation,
    DegradationInfo,
    DegradationSpec,
    derive,
    info_from,
    parse_matrix,
    parse_spec,
)

__all__ = [
    "KINDS",
    "PRESETS",
    "Degradation",
    "DegradationInfo",
    "DegradationSpec",
    "derive",
    "info_from",
    "parse_matrix",
    "parse_spec",
]
