"""The degradation matrix: every benchmark × every degradation scenario.

``pdw suite --degrade <spec>[,<spec>...]`` runs PDW (degradation is a
PDW-side capability; DAWO has no avoid-set routing) across the full
cross-product and reports one row per (benchmark, scenario):

========================== ======================================================
outcome                     meaning
========================== ======================================================
``OK``                      full coverage on the degraded chip
``DEGRADED``                plan validates, but some wash targets are unreachable
``REPAIRED``                online fault detected, replanned to full coverage
``INFEASIBLE_DEGRADED``     washing (or the assay itself) proven impossible
``FAILED(kind)``            an unrelated failure (bug, injected fault, ...)
========================== ======================================================

Rows never raise: a scenario that breaks a benchmark is a reported row,
and the remaining cells still run.  Every row is journaled (``"event":
"degrade"`` records in the suite journal) so ``pdw report degrade``
renders the robustness table without re-running anything.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bench import benchmark, benchmark_names, load_benchmark
from repro.core import PDWConfig, optimize_washes
from repro.degrade.model import DegradationSpec, parse_matrix
from repro.degrade.repair import parse_fault, repair_plan
from repro.errors import DegradationError, DegradedInfeasibleError, ReproError
from repro.obs.metrics import registry
from repro.obs.trace import span
from repro.pipeline import ArtifactCache, chaos, default_cache
from repro.sched import journal as sched_journal
from repro.synth import synthesize

#: Degrade-matrix outcomes that count as success for the exit code.
#: ``DEGRADED`` is a success: the method did exactly what it promises on
#: a broken chip — planned what is physically washable and *reported*
#: the gap instead of crashing or silently under-washing.
SUCCESS_OUTCOMES = ("OK", "REPAIRED", "DEGRADED")


@dataclass
class DegradeRow:
    """One (benchmark, scenario) cell of the degradation matrix."""

    benchmark: str
    scenario: str
    outcome: str
    coverage: float = 1.0
    dead: tuple = ()
    uncovered: tuple = ()
    washes: int = 0
    repair_rounds: int = 0
    warm_started: bool = False
    wall_s: float = 0.0
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in SUCCESS_OUTCOMES

    def as_record(self) -> dict:
        """The journal form (``pdw report degrade`` reads these back)."""
        return {
            "event": "degrade",
            "benchmark": self.benchmark,
            "scenario": self.scenario,
            "outcome": self.outcome,
            "coverage": round(self.coverage, 4),
            "dead": sorted(self.dead),
            "uncovered": sorted(self.uncovered),
            "washes": self.washes,
            "repair_rounds": self.repair_rounds,
            "warm_started": self.warm_started,
            "wall_s": round(self.wall_s, 3),
            "message": self.message,
        }


@dataclass
class DegradeMatrixResult:
    """All rows of one matrix run, in (benchmark, scenario) order."""

    rows: List[DegradeRow] = field(default_factory=list)
    journal_path: Optional[object] = None

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        table_rows = []
        for row in self.rows:
            detail = row.message
            if not detail and row.uncovered:
                detail = "uncovered: " + ",".join(sorted(row.uncovered)[:4])
            table_rows.append(
                [
                    row.benchmark,
                    row.scenario,
                    row.outcome,
                    f"{100.0 * row.coverage:.0f}%",
                    str(len(row.dead)),
                    str(row.washes),
                    str(row.repair_rounds),
                    f"{row.wall_s:.2f}",
                    detail[:48],
                ]
            )
        return render_table(
            [
                "benchmark",
                "scenario",
                "outcome",
                "coverage",
                "dead",
                "washes",
                "repairs",
                "wall_s",
                "detail",
            ],
            table_rows,
        )


def _row_from_plan(name: str, scenario: str, plan, wall_s: float) -> DegradeRow:
    info = getattr(plan, "degradation", None)
    coverage = info.coverage if info is not None else 1.0
    if info is not None:
        reg = registry()
        for kind, nodes in (
            ("channel", info.dead_channels),
            ("valve", info.dead_valves),
            ("device", info.dead_devices),
            ("explicit", info.dead_explicit),
        ):
            if nodes:
                reg.counter("pdw_degrade_dead_nodes_total", kind=kind).inc(len(nodes))
    return DegradeRow(
        benchmark=name,
        scenario=scenario,
        outcome="OK" if coverage >= 1.0 else "DEGRADED",
        coverage=coverage,
        dead=tuple(sorted(info.dead)) if info is not None else (),
        uncovered=tuple(info.uncovered_targets) if info is not None else (),
        washes=plan.n_wash,
        wall_s=wall_s,
    )


def run_degrade_matrix(
    names: Optional[Sequence[str]] = None,
    scenarios: str = "light",
    config: Optional[PDWConfig] = None,
    cache: Optional[ArtifactCache] = None,
    online: Optional[str] = None,
    journal_path=None,
) -> DegradeMatrixResult:
    """Run the degradation matrix and return one row per cell.

    ``scenarios`` is the raw ``--degrade`` value (comma-separated specs /
    presets).  ``online`` arms mid-execution fault injection on top of
    each scenario's static damage: ``"auto"`` picks a repairable fault
    deterministically, ``"node@tick"`` pins one.  With ``online`` set and
    ``scenarios`` empty the matrix runs one pristine-chip scenario per
    benchmark (pure online repair).  Journal records land in the suite
    journal (or ``journal_path``) for ``pdw report degrade``.
    """
    base_config = config if config is not None else PDWConfig()
    if base_config.degrade:
        raise DegradationError(
            "pass degradation scenarios via the matrix argument, not "
            "through PDWConfig.degrade"
        )
    names = list(names) if names else benchmark_names()
    if scenarios.strip():
        specs: List[Optional[DegradationSpec]] = list(parse_matrix(scenarios))
    elif online:
        specs = [None]  # pristine chip, online fault only
    else:
        raise DegradationError("the degradation matrix needs at least one scenario")

    cache = cache if cache is not None else default_cache()
    if journal_path is None and cache is not None:
        from repro.experiments.supervisor import default_journal_path

        journal_path = default_journal_path(cache)

    reg = registry()
    result = DegradeMatrixResult(journal_path=journal_path)
    for name in names:
        synthesis = None
        for spec in specs:
            scenario = spec.token() if spec is not None else "none"
            if online:
                scenario = f"{scenario}+online"
            started = time.perf_counter()
            with span("degrade.scenario", benchmark=name, scenario=scenario):
                try:
                    if synthesis is None:
                        bench_spec = benchmark(name)
                        synthesis = synthesize(
                            load_benchmark(name), inventory=bench_spec.inventory
                        )
                    row = _run_cell(
                        name, scenario, spec, synthesis, base_config, cache, online,
                        started,
                    )
                except (DegradedInfeasibleError, DegradationError) as exc:
                    row = DegradeRow(
                        benchmark=name,
                        scenario=scenario,
                        outcome="INFEASIBLE_DEGRADED",
                        coverage=0.0,
                        wall_s=time.perf_counter() - started,
                        message=str(exc),
                    )
                except chaos.InjectedFault as exc:
                    row = DegradeRow(
                        benchmark=name,
                        scenario=scenario,
                        outcome="FAILED(crash)",
                        coverage=0.0,
                        wall_s=time.perf_counter() - started,
                        message=str(exc),
                    )
                except ReproError as exc:
                    row = DegradeRow(
                        benchmark=name,
                        scenario=scenario,
                        outcome="FAILED(error)",
                        coverage=0.0,
                        wall_s=time.perf_counter() - started,
                        message=str(exc),
                    )
            reg.counter("pdw_degrade_scenarios_total", outcome=row.outcome).inc()
            result.rows.append(row)
            if journal_path is not None:
                sched_journal.append_record(journal_path, row.as_record())
    return result


def _run_cell(
    name: str,
    scenario: str,
    spec: Optional[DegradationSpec],
    synthesis,
    base_config: PDWConfig,
    cache,
    online: Optional[str],
    started: float,
) -> DegradeRow:
    """One matrix cell: static degraded plan, then the optional online leg."""
    cfg = base_config
    if spec is not None:
        cfg = dataclasses.replace(base_config, degrade=spec.token())
    plan = optimize_washes(synthesis, cfg, cache=cache)
    row = _row_from_plan(name, scenario, plan, time.perf_counter() - started)

    if online:
        fault = parse_fault(online, plan, synthesis)
        repair = repair_plan(plan, synthesis, cfg, fault, cache=cache)
        info = getattr(repair.plan, "degradation", None)
        row.repair_rounds = len(repair.records)
        row.warm_started = any(r.warm_started for r in repair.records)
        row.washes = repair.plan.n_wash
        row.wall_s = time.perf_counter() - started
        if repair.status == "infeasible":
            row.outcome = "INFEASIBLE_DEGRADED"
            row.coverage = info.coverage if info is not None else 0.0
            row.message = repair.detail
        else:
            row.outcome = "REPAIRED" if repair.status == "repaired" else "DEGRADED"
            if info is not None:
                row.coverage = info.coverage
                row.dead = tuple(sorted(info.dead))
                row.uncovered = tuple(info.uncovered_targets)
    return row
