"""A compact text DSL for writing bioassays by hand.

Grammar (one statement per line; ``#`` starts a comment)::

    assay <name>
    reagent <id> : <fluid-type>
    <op-id> = <op-type>(<input>[, <input>...]) [@ <seconds>s]

Example::

    assay glucose-test
    # inputs
    reagent s1 : serum
    reagent g1 : glucose-agent
    reagent b1 : diluent
    # protocol
    mix1 = mix(s1, g1) @ 5s
    dil1 = dilute(mix1, b1)
    det1 = detect(dil1) @ 4s

Parsed with :func:`parse_assay`; the inverse, :func:`format_assay`, renders
any sequencing graph back into the DSL (round-trip safe).
"""

from __future__ import annotations

import re
from typing import List

from repro.assay.graph import Operation, Reagent, SequencingGraph
from repro.errors import AssayError

_ASSAY_RE = re.compile(r"^assay\s+(?P<name>\S+)\s*$")
_REAGENT_RE = re.compile(r"^reagent\s+(?P<id>\w[\w.-]*)\s*:\s*(?P<fluid>\S+)\s*$")
_OP_RE = re.compile(
    r"^(?P<id>\w[\w.-]*)\s*=\s*(?P<type>\w+)\s*"
    r"\(\s*(?P<inputs>[^)]*)\)\s*"
    r"(?:@\s*(?P<duration>\d+)\s*s)?\s*$"
)


def parse_assay(text: str) -> SequencingGraph:
    """Parse DSL ``text`` into a validated sequencing graph.

    Raises :class:`~repro.errors.AssayError` with the offending line number
    on any syntax or semantic problem.
    """
    graph: SequencingGraph | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        match = _ASSAY_RE.match(line)
        if match:
            if graph is not None:
                raise AssayError(f"line {line_no}: duplicate 'assay' statement")
            graph = SequencingGraph(match.group("name"))
            continue

        if graph is None:
            raise AssayError(
                f"line {line_no}: file must start with 'assay <name>'"
            )

        match = _REAGENT_RE.match(line)
        if match:
            graph.add_reagent(Reagent(match.group("id"), match.group("fluid")))
            continue

        match = _OP_RE.match(line)
        if match:
            inputs = [s.strip() for s in match.group("inputs").split(",") if s.strip()]
            if not inputs:
                raise AssayError(f"line {line_no}: operation needs inputs")
            duration = match.group("duration")
            try:
                graph.add_operation(
                    Operation(
                        match.group("id"),
                        match.group("type"),
                        int(duration) if duration else None,
                    ),
                    inputs=inputs,
                )
            except (AssayError, KeyError) as exc:
                raise AssayError(f"line {line_no}: {exc}") from exc
            continue

        raise AssayError(f"line {line_no}: cannot parse {line!r}")

    if graph is None:
        raise AssayError("empty assay document")
    graph.validate()
    return graph


def format_assay(graph: SequencingGraph) -> str:
    """Render a sequencing graph as DSL text (inverse of :func:`parse_assay`)."""
    lines: List[str] = [f"assay {graph.name}"]
    for reagent in graph.reagents:
        lines.append(f"reagent {reagent.id} : {reagent.fluid_type}")
    for op in graph.operations:
        inputs = ", ".join(graph.inputs_of(op.id))
        suffix = f" @ {op.duration_s}s" if op.duration_s is not None else ""
        lines.append(f"{op.id} = {op.op_type}({inputs}){suffix}")
    return "\n".join(lines) + "\n"
