"""The sequencing graph :math:`G(O, E)` of a bioassay.

Nodes are reagent inputs (:class:`Reagent`) and biochemical operations
(:class:`Operation`); directed edges carry fluids from producers to
consumers.  The edge count reported for the paper's benchmarks (Table II,
column 2) includes reagent-input edges and terminal output edges — the only
reading consistent with e.g. Kinase act-1 having 4 operations but 16 edges —
so :attr:`SequencingGraph.edge_count` follows the same convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.assay.fluids import composite_fluid
from repro.assay.operations import default_duration, is_transformative, spec_for
from repro.errors import AssayError


@dataclass(frozen=True)
class Reagent:
    """An input reagent injected from a flow port."""

    id: str
    fluid_type: str

    def __post_init__(self) -> None:
        if not self.id:
            raise AssayError("reagent id cannot be empty")
        if not self.fluid_type:
            raise AssayError(f"reagent {self.id!r}: fluid type cannot be empty")


@dataclass(frozen=True)
class Operation:
    """A biochemical operation with an execution time.

    ``duration_s`` is the paper's :math:`t(o_i)`; when ``None`` it defaults
    to the taxonomy value for the operation type.
    """

    id: str
    op_type: str
    duration_s: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.id:
            raise AssayError("operation id cannot be empty")
        spec_for(self.op_type)  # raises on unknown types
        if self.duration_s is not None and self.duration_s < 1:
            raise AssayError(f"operation {self.id!r}: duration must be >= 1 s")

    @property
    def duration(self) -> int:
        """Effective execution time in seconds."""
        return self.duration_s if self.duration_s is not None else default_duration(self.op_type)


class SequencingGraph:
    """A validated bioassay DAG.

    Example
    -------
    >>> g = SequencingGraph("demo")
    >>> g.add_reagent(Reagent("r1", "sample"))
    >>> g.add_reagent(Reagent("r2", "enzyme"))
    >>> g.add_operation(Operation("o1", "mix"), inputs=["r1", "r2"])
    >>> g.add_operation(Operation("o2", "detect"), inputs=["o1"])
    >>> g.validate()
    >>> g.operation_count, g.edge_count
    (2, 4)
    """

    def __init__(self, name: str):
        if not name:
            raise AssayError("assay name cannot be empty")
        self.name = name
        self._graph = nx.DiGraph()
        self._reagents: Dict[str, Reagent] = {}
        self._operations: Dict[str, Operation] = {}

    # -- construction ----------------------------------------------------------

    def add_reagent(self, reagent: Reagent) -> None:
        """Register an input reagent node."""
        if reagent.id in self._graph:
            raise AssayError(f"duplicate node id {reagent.id!r}")
        self._reagents[reagent.id] = reagent
        self._graph.add_node(reagent.id, kind="reagent")

    def add_operation(self, op: Operation, inputs: Sequence[str]) -> None:
        """Register an operation node consuming the given producers.

        ``inputs`` may name reagents or previously added operations; each
        input contributes one dependency edge (:math:`e_{j,i}`).
        """
        if op.id in self._graph:
            raise AssayError(f"duplicate node id {op.id!r}")
        if not inputs:
            raise AssayError(f"operation {op.id!r} must consume at least one input")
        for src in inputs:
            if src not in self._graph:
                raise AssayError(f"operation {op.id!r}: unknown input {src!r}")
        self._operations[op.id] = op
        self._graph.add_node(op.id, kind="operation")
        for src in inputs:
            self._graph.add_edge(src, op.id)

    def add_input(self, op_id: str, src: str) -> None:
        """Add an extra dependency edge from ``src`` into existing ``op_id``.

        Used by benchmark generators to top up multi-reagent operations.
        """
        if op_id not in self._operations:
            raise AssayError(f"unknown operation {op_id!r}")
        if src not in self._graph:
            raise AssayError(f"unknown input {src!r}")
        if self._graph.has_edge(src, op_id):
            raise AssayError(f"edge {src!r} -> {op_id!r} already exists")
        self._graph.add_edge(src, op_id)

    # -- queries -----------------------------------------------------------------

    @property
    def reagents(self) -> List[Reagent]:
        """All reagent inputs, in insertion order."""
        return list(self._reagents.values())

    @property
    def operations(self) -> List[Operation]:
        """All operations, in insertion order."""
        return list(self._operations.values())

    def operation(self, op_id: str) -> Operation:
        """Look up an operation by id."""
        try:
            return self._operations[op_id]
        except KeyError:
            raise AssayError(f"unknown operation {op_id!r}") from None

    def is_reagent(self, node_id: str) -> bool:
        """Whether ``node_id`` names a reagent input."""
        return node_id in self._reagents

    def inputs_of(self, op_id: str) -> List[str]:
        """Producer node ids feeding ``op_id``."""
        return sorted(self._graph.predecessors(op_id))

    def consumers_of(self, node_id: str) -> List[str]:
        """Operation ids consuming the output of ``node_id``."""
        return sorted(self._graph.successors(node_id))

    def terminal_operations(self) -> List[str]:
        """Operations whose output leaves the chip as assay product/waste."""
        return [o.id for o in self.operations if not self.consumers_of(o.id)]

    def dependency_edges(self) -> List[Tuple[str, str]]:
        """All (producer, consumer) edges, producers may be reagents."""
        return list(self._graph.edges())

    def topological_operations(self) -> List[str]:
        """Operation ids in a valid execution order."""
        self.validate()
        return [n for n in nx.topological_sort(self._graph) if n in self._operations]

    # -- size metrics (Table II conventions) ------------------------------------

    @property
    def operation_count(self) -> int:
        """|O| — number of biochemical operations."""
        return len(self._operations)

    @property
    def edge_count(self) -> int:
        """|E| — dependency edges plus terminal output edges (see module doc)."""
        return self._graph.number_of_edges() + len(self.terminal_operations())

    def required_device_kinds(self) -> Dict[str, int]:
        """How many concurrent devices each kind needs at minimum (>= 1 each)."""
        kinds: Dict[str, int] = {}
        for op in self.operations:
            kind = spec_for(op.op_type).device_kind.value
            kinds[kind] = kinds.get(kind, 0) + 1
        return kinds

    # -- fluid typing -----------------------------------------------------------

    def fluid_types(self) -> Dict[str, str]:
        """Output fluid type of every node (reagent or operation).

        Pass-through operations (detect, store) forward their single input
        type; transformative operations create a composite type via
        :func:`~repro.assay.fluids.composite_fluid`.
        """
        self.validate()
        types: Dict[str, str] = {r.id: r.fluid_type for r in self.reagents}
        for node in nx.topological_sort(self._graph):
            if node in types:
                continue
            op = self._operations[node]
            input_types = [types[src] for src in self.inputs_of(node)]
            if is_transformative(op.op_type):
                types[node] = composite_fluid(op.id, op.op_type, input_types)
            else:
                types[node] = input_types[0]
        return types

    # -- validation -------------------------------------------------------------

    def issues(self) -> List[str]:
        """Structural problems, empty when the assay is well-formed."""
        problems: List[str] = []
        if not self._operations:
            problems.append("assay has no operations")
        if not self._reagents:
            problems.append("assay has no input reagents")
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            problems.append(f"dependency cycle: {cycle}")
        for reagent in self._reagents.values():
            if not list(self._graph.successors(reagent.id)):
                problems.append(f"reagent {reagent.id!r} is never consumed")
        for op in self._operations.values():
            if not is_transformative(op.op_type) and len(self.inputs_of(op.id)) > 1:
                problems.append(
                    f"pass-through operation {op.id!r} ({op.op_type}) "
                    "cannot merge multiple inputs"
                )
        return problems

    def validate(self) -> None:
        """Raise :class:`~repro.errors.AssayError` on any structural problem."""
        problems = self.issues()
        if problems:
            raise AssayError(f"assay {self.name!r}: " + "; ".join(problems))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SequencingGraph({self.name!r}, |O|={self.operation_count}, "
            f"|E|={self.edge_count}, reagents={len(self._reagents)})"
        )
