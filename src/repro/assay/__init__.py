"""Bioassay modeling: fluids, operations and sequencing graphs.

A bioassay is "modeled as a sequencing graph G(O, E), where O is a set of
biochemical operations with specific execution times and E indicates the
dependencies between these operations" (Section II).  This package provides

* :class:`~repro.assay.operations.OperationSpec` — the operation taxonomy
  (mix, heat, detect, ...) with default durations and the
  transformative/pass-through distinction that drives Type 2 wash
  exemptions,
* :class:`~repro.assay.graph.SequencingGraph` — the DAG of reagent inputs
  and operations, with fluid-type propagation,
* JSON (de)serialization in :mod:`repro.assay.io`.
"""

from repro.assay.fluids import Fluid, composite_fluid
from repro.assay.operations import (
    OPERATION_TYPES,
    OperationSpec,
    is_transformative,
    default_duration,
)
from repro.assay.graph import Operation, Reagent, SequencingGraph
from repro.assay.dsl import format_assay, parse_assay
from repro.assay.io import graph_from_dict, graph_from_json, graph_to_dict, graph_to_json

__all__ = [
    "Fluid",
    "OPERATION_TYPES",
    "Operation",
    "OperationSpec",
    "Reagent",
    "SequencingGraph",
    "composite_fluid",
    "default_duration",
    "format_assay",
    "parse_assay",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "is_transformative",
]
