"""Fluid typing for contamination analysis.

Cross-contamination is a relation between *fluid types*: a residue only
threatens a later flow if the two fluids differ (Type 2 analysis of
Section II-A).  We represent fluid types as opaque strings; reagents carry
their own type, and operation outputs either pass the input type through
(e.g. a detection does not alter the fluid) or create a fresh composite type
(e.g. a mix of two reagents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Type string of wash buffer fluid — never contaminates anything.
BUFFER_TYPE = "__buffer__"

#: Type string marking waste flows (Type 3 analysis).
WASTE_TYPE = "__waste__"


@dataclass(frozen=True)
class Fluid:
    """A concrete fluid instance with a contamination type.

    Two fluids cross-contaminate iff their ``type_key`` values differ and
    neither is wash buffer.
    """

    name: str
    type_key: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fluid name cannot be empty")
        if not self.type_key:
            raise ValueError("fluid type key cannot be empty")

    @property
    def is_buffer(self) -> bool:
        """Whether this fluid is wash buffer."""
        return self.type_key == BUFFER_TYPE

    def contaminates(self, other: "Fluid") -> bool:
        """Whether residue of ``self`` would corrupt a flow of ``other``."""
        if self.is_buffer or other.is_buffer:
            return False
        return self.type_key != other.type_key


def buffer_fluid(name: str = "buffer") -> Fluid:
    """A wash-buffer fluid instance."""
    return Fluid(name, BUFFER_TYPE)


def composite_fluid(op_id: str, op_type: str, input_types: Sequence[str]) -> str:
    """Deterministic type key for the output of a transformative operation.

    The key embeds the operation id, so re-running the same recipe in a
    different operation yields a distinct fluid instance type — matching the
    paper's conservative treatment where only *the same* fluid avoids
    contamination.
    """
    joined = "|".join(sorted(input_types))
    return f"{op_type}:{op_id}({joined})"
