"""The biochemical operation taxonomy.

Each operation type maps to the device kind that executes it and carries a
default execution time (used when a benchmark does not specify one) plus the
*transformative* flag: a transformative operation (mix, heat, ...) produces
a chemically new fluid, while a pass-through operation (detect, store)
outputs the same fluid it received.  The flag drives the Type 2 wash
exemption of Section II-A — in the paper's example, the detection result of
``o4`` is the *same* fluid that earlier contaminated the path, so no wash is
needed, whereas the heater output of ``o5`` is a new fluid and the path must
be washed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.device import DeviceKind


@dataclass(frozen=True)
class OperationSpec:
    """Static properties of one operation type."""

    op_type: str
    device_kind: DeviceKind
    transformative: bool
    default_duration_s: int

    def __post_init__(self) -> None:
        if self.default_duration_s < 1:
            raise ValueError(f"{self.op_type}: duration must be >= 1 s")


#: All supported operation types.  Durations follow the scale of the paper's
#: example schedule (mixing 5 s, detection 4 s, heating 4 s; Fig. 2(b)).
OPERATION_TYPES: Dict[str, OperationSpec] = {
    spec.op_type: spec
    for spec in (
        OperationSpec("mix", DeviceKind.MIXER, True, 5),
        OperationSpec("dilute", DeviceKind.MIXER, True, 5),
        OperationSpec("heat", DeviceKind.HEATER, True, 4),
        OperationSpec("thermocycle", DeviceKind.HEATER, True, 8),
        OperationSpec("incubate", DeviceKind.INCUBATOR, True, 6),
        OperationSpec("detect", DeviceKind.DETECTOR, False, 4),
        OperationSpec("filter", DeviceKind.FILTER, True, 3),
        OperationSpec("store", DeviceKind.STORAGE, False, 1),
        OperationSpec("separate", DeviceKind.SEPARATOR, True, 4),
        OperationSpec("split", DeviceKind.SEPARATOR, True, 2),
        OperationSpec("culture", DeviceKind.INCUBATOR, True, 10),
    )
}


def spec_for(op_type: str) -> OperationSpec:
    """Spec of an operation type; raises ``KeyError`` with a helpful message."""
    try:
        return OPERATION_TYPES[op_type]
    except KeyError:
        known = ", ".join(sorted(OPERATION_TYPES))
        raise KeyError(f"unknown operation type {op_type!r}; known: {known}") from None


def is_transformative(op_type: str) -> bool:
    """Whether ``op_type`` produces a chemically new fluid."""
    return spec_for(op_type).transformative


def default_duration(op_type: str) -> int:
    """Default execution time of ``op_type`` in seconds."""
    return spec_for(op_type).default_duration_s
