"""JSON (de)serialization of sequencing graphs.

The on-disk format is deliberately plain so benchmark assays can be written
by hand::

    {
      "name": "pcr",
      "reagents": [{"id": "r1", "fluid_type": "primer"}],
      "operations": [
        {"id": "o1", "op_type": "mix", "duration_s": 5, "inputs": ["r1", "r2"]}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.assay.graph import Operation, Reagent, SequencingGraph
from repro.errors import AssayError


def graph_to_dict(graph: SequencingGraph) -> Dict[str, Any]:
    """Serialize a sequencing graph to plain data."""
    return {
        "name": graph.name,
        "reagents": [
            {"id": r.id, "fluid_type": r.fluid_type} for r in graph.reagents
        ],
        "operations": [
            {
                "id": op.id,
                "op_type": op.op_type,
                "duration_s": op.duration_s,
                "inputs": graph.inputs_of(op.id),
            }
            for op in graph.operations
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> SequencingGraph:
    """Rebuild a sequencing graph from :func:`graph_to_dict` output."""
    try:
        graph = SequencingGraph(data["name"])
        for item in data.get("reagents", []):
            graph.add_reagent(Reagent(item["id"], item["fluid_type"]))
        for item in data.get("operations", []):
            op = Operation(item["id"], item["op_type"], item.get("duration_s"))
            graph.add_operation(op, inputs=item["inputs"])
    except KeyError as exc:
        raise AssayError(f"assay document missing field {exc}") from exc
    graph.validate()
    return graph


def graph_to_json(graph: SequencingGraph, indent: int = 2) -> str:
    """Serialize a sequencing graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str) -> SequencingGraph:
    """Parse a sequencing graph from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AssayError(f"malformed assay JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise AssayError("assay JSON must be an object")
    return graph_from_dict(data)
