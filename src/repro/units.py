"""Physical units and constants used throughout the library.

The paper works in millimetres and seconds: wash-path lengths are reported in
mm (Table II), schedules in integer seconds (Fig. 2(b)/Fig. 3), and the flow
velocity is ``v_f = 10 mm/s`` [13].  We keep the same convention:

* lengths are ``float`` millimetres,
* times are ``int`` seconds (schedule ticks) or ``float`` seconds for
  physical durations before rounding,
* the virtual grid has a configurable *cell pitch* — the physical channel
  length represented by one grid cell.

The module also implements the wash-duration model of Eq. (17):

.. math::

    t(w_j) = L(l_{w_j}) / v_f + t_d(w_j)

where :math:`t_d` is the dissolution time of the contaminant, estimated from
a protein-diffusion model [11].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default flow velocity in mm/s (paper, Section IV, citing [13]).
DEFAULT_FLOW_VELOCITY_MM_S: float = 10.0

#: Default physical length of one grid cell in mm.  Chosen so that the
#: total wash-path lengths of the Table II benchmarks land in the paper's
#: reported range (60-460 mm) and transports take ~1-3 s as in the paper's
#: example schedule; see DESIGN.md.
DEFAULT_CELL_PITCH_MM: float = 1.5

#: Default dissolution time for a generic contaminant in seconds.  The paper
#: takes dissolution times from a protein-diffusion model [11]; for the
#: integer-second schedules used here one second is the natural quantum.
DEFAULT_DISSOLUTION_TIME_S: float = 1.0


@dataclass(frozen=True)
class PhysicalParameters:
    """Physical constants of a chip / fluid combination.

    Attributes
    ----------
    flow_velocity_mm_s:
        Velocity of fluids driven through flow channels, mm/s.
    cell_pitch_mm:
        Physical channel length represented by one virtual-grid cell, mm.
    dissolution_time_s:
        Extra time a wash flow must keep flushing a contaminated cell so
        that residues dissolve into the buffer (Eq. 17's :math:`t_d`).
    """

    flow_velocity_mm_s: float = DEFAULT_FLOW_VELOCITY_MM_S
    cell_pitch_mm: float = DEFAULT_CELL_PITCH_MM
    dissolution_time_s: float = DEFAULT_DISSOLUTION_TIME_S

    def __post_init__(self) -> None:
        if self.flow_velocity_mm_s <= 0:
            raise ValueError("flow velocity must be positive")
        if self.cell_pitch_mm <= 0:
            raise ValueError("cell pitch must be positive")
        if self.dissolution_time_s < 0:
            raise ValueError("dissolution time cannot be negative")

    def path_length_mm(self, n_cells: int) -> float:
        """Physical length of a flow path spanning ``n_cells`` grid cells."""
        if n_cells < 0:
            raise ValueError("cell count cannot be negative")
        return n_cells * self.cell_pitch_mm

    def transport_time_s(self, n_cells: int) -> int:
        """Integer seconds needed to push a fluid plug along ``n_cells`` cells.

        Always at least one schedule tick, matching the 1 s transport slots
        of the paper's example schedule.
        """
        length = self.path_length_mm(n_cells)
        return max(1, math.ceil(length / self.flow_velocity_mm_s))

    def wash_time_s(self, n_cells: int) -> int:
        """Duration of a wash operation over a path of ``n_cells`` cells.

        Implements Eq. (17): flush time (path length over flow velocity)
        plus the dissolution time of the contaminant, rounded up to whole
        schedule ticks and clamped to at least one tick.
        """
        length = self.path_length_mm(n_cells)
        duration = length / self.flow_velocity_mm_s + self.dissolution_time_s
        return max(1, math.ceil(duration))


#: Library-wide default parameter set.
DEFAULT_PARAMETERS = PhysicalParameters()
