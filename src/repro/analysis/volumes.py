"""Fluid-volume accounting.

Channels on PDMS chips are etched with a rectangular cross-section around
100 µm x 100 µm [4]; a flush at flow velocity ``v_f`` for ``t`` seconds
therefore consumes ``area * v_f * t`` of fluid.  The model below converts
wash plans and schedules into microliters of buffer and reagent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.plan import WashPlan
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import TaskKind

#: mm^2 for a 100 µm x 100 µm channel.
DEFAULT_CROSS_SECTION_MM2 = 0.01


@dataclass(frozen=True)
class VolumeModel:
    """Converts path lengths and flush durations to fluid volumes.

    Attributes
    ----------
    cross_section_mm2:
        Channel cross-section area in mm².
    flow_velocity_mm_s:
        Flow velocity used for flush-volume integration (defaults to the
        paper's 10 mm/s).
    """

    cross_section_mm2: float = DEFAULT_CROSS_SECTION_MM2
    flow_velocity_mm_s: float = 10.0

    def __post_init__(self) -> None:
        if self.cross_section_mm2 <= 0:
            raise ValueError("cross-section must be positive")
        if self.flow_velocity_mm_s <= 0:
            raise ValueError("flow velocity must be positive")

    # -- primitives -----------------------------------------------------------

    def path_volume_ul(self, length_mm: float) -> float:
        """Volume held by a channel path of ``length_mm`` (1 mm³ = 1 µL)."""
        if length_mm < 0:
            raise ValueError("length cannot be negative")
        return length_mm * self.cross_section_mm2

    def flush_volume_ul(self, duration_s: float) -> float:
        """Fluid pushed through a channel during a ``duration_s`` flush."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        return self.cross_section_mm2 * self.flow_velocity_mm_s * duration_s

    # -- aggregates ---------------------------------------------------------------

    def wash_buffer_ul(self, plan: WashPlan) -> float:
        """Total wash-buffer consumption of a plan.

        Each wash flushes buffer for its whole duration (Eq. 17: flush +
        dissolution), so consumption integrates over time, not just the
        path's static volume.
        """
        return sum(self.flush_volume_ul(w.duration) for w in plan.washes)

    def reagent_ul(self, schedule: Schedule) -> float:
        """Reagent volume injected from flow ports (one plug per injection).

        A transported plug fills its path once; intermediate transports
        move existing fluid and consume nothing new.
        """
        total = 0.0
        for task in schedule.tasks(TaskKind.TRANSPORT):
            if task.edge is None:
                continue
            src = task.edge[0]
            if src.startswith("r") or task.path[0].startswith("in"):
                # injections start at a flow port
                if task.path[0].startswith("in"):
                    total += self.flush_volume_ul(task.duration)
        return total

    def plan_volumes(self, plan: WashPlan) -> Dict[str, float]:
        """Buffer and reagent totals for one plan, in µL."""
        return {
            "wash_buffer_ul": round(self.wash_buffer_ul(plan), 4),
            "reagent_ul": round(self.reagent_ul(plan.schedule), 4),
        }
