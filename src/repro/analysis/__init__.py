"""Cost and consumption analysis of chips and wash plans.

The paper motivates necessity analysis by the "extra cost, e.g., wash paths
and buffer fluids, introduced by wash"; this package quantifies that cost:

* :mod:`repro.analysis.volumes` — buffer consumed by wash flushes and
  reagent volume injected, from a channel cross-section model,
* :mod:`repro.analysis.cost` — chip-level cost report: valves, minimum
  control ports, channel length, and a side-by-side plan comparison.
"""

from repro.analysis.volumes import VolumeModel
from repro.analysis.cost import ChipCostReport, chip_cost, compare_plans

__all__ = ["ChipCostReport", "VolumeModel", "chip_cost", "compare_plans"]
