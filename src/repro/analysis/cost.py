"""Chip-level cost reporting and plan comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.arch.chip import Chip
from repro.arch.control import ControlLayer
from repro.analysis.volumes import VolumeModel
from repro.core.plan import WashPlan
from repro.experiments.reporting import render_table
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class ChipCostReport:
    """Static and schedule-dependent cost figures of one chip."""

    devices: int
    flow_ports: int
    waste_ports: int
    channel_segments: int
    channel_length_mm: float
    valves: int
    control_ports: Optional[int] = None
    valve_switches: Optional[int] = None

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping for reports/serialization."""
        out: Dict[str, float] = {
            "devices": float(self.devices),
            "flow_ports": float(self.flow_ports),
            "waste_ports": float(self.waste_ports),
            "channel_segments": float(self.channel_segments),
            "channel_length_mm": round(self.channel_length_mm, 2),
            "valves": float(self.valves),
        }
        if self.control_ports is not None:
            out["control_ports"] = float(self.control_ports)
        if self.valve_switches is not None:
            out["valve_switches"] = float(self.valve_switches)
        return out


def chip_cost(chip: Chip, schedule: Optional[Schedule] = None) -> ChipCostReport:
    """Cost report for ``chip``; pass a schedule for actuation figures."""
    layer = ControlLayer(chip)
    control_ports = valve_switches = None
    if schedule is not None:
        table = layer.actuation_table(schedule)
        control_ports = table.control_port_count()
        valve_switches = table.switch_count()
    length = sum(
        chip.edge_length_mm(a, b) for a, b in chip.graph.edges
    )
    return ChipCostReport(
        devices=len(chip.devices),
        flow_ports=len(chip.flow_ports),
        waste_ports=len(chip.waste_ports),
        channel_segments=chip.graph.number_of_edges(),
        channel_length_mm=length,
        valves=layer.valve_count,
        control_ports=control_ports,
        valve_switches=valve_switches,
    )


def compare_plans(
    plans: Sequence[WashPlan],
    volumes: VolumeModel = VolumeModel(),
) -> str:
    """Aligned text table comparing wash plans, including fluid volumes."""
    if not plans:
        return "(no plans)\n"
    headers = ["metric"] + [plan.method for plan in plans]
    keys = list(plans[0].metrics())
    rows = []
    for key in keys:
        rows.append([key] + [f"{plan.metrics()[key]:g}" for plan in plans])
    rows.append(
        ["wash_buffer_ul"]
        + [f"{volumes.wash_buffer_ul(plan):g}" for plan in plans]
    )
    rows.append(
        ["valve_switches"]
        + [
            f"{chip_cost(plan.chip, plan.schedule).valve_switches:g}"
            for plan in plans
        ]
    )
    return render_table(headers, rows)
