"""The ``pdw`` command-line tool.

Subcommands::

    pdw run <benchmark> [--method pdw|dawo|immediate] [--gantt] [--chip]
            [--stats] [--no-cache] [--degrade SPEC]
    pdw list
    pdw report {table2,fig4,fig5,ablation,necessity,pareto,timings,
                failures,degrade,trace,all} [benchmark]
    pdw suite [benchmark ...] [--timeout S] [--retries N] [--resume]
              [--max-rss MB] [--sched-workers N]  # supervised / DAG runs
    pdw suite [benchmark ...] --degrade SPEC[,SPEC...]
              [--degrade-online [NODE@TICK]]      # degradation matrix
    pdw bench [benchmark ...] [--iterations N] [--quick] [--out FILE]
              [--compare BASELINE.json] [--threshold PCT] [--sched-workers N]
    pdw assay <file.json> [--method ...]     # optimize a user assay
    pdw cost <benchmark>                     # chip cost + plan comparison
    pdw simulate <benchmark> [--method ...]  # discrete-event execution log
    pdw export <benchmark> --what plan|actuation|svg|trace|metrics
               [--format json|prom] [--out FILE]
    pdw cache {info,clear,verify,gc} [--cache DIR]  # on-disk artifact cache
    pdw serve [--host H] [--port P] [--workers N] [--queue-cap N]
              [--cache DIR] [--timeout S]    # HTTP job API (docs/SERVICE.md)

Exit codes: 0 success; 1 simulation broken / corrupt cache entries found /
``pdw bench --compare`` detected a hot-path regression; 2 a
:class:`~repro.errors.ReproError` (clean one-line message on stderr);
3 ``pdw suite`` completed but lost at least one benchmark (partial
success — see ``pdw report failures``), or a degradation matrix had an
``INFEASIBLE_DEGRADED``/failed cell (see ``pdw report degrade``).

The full reference, including every flag, lives in docs/CLI.md — a unit
test asserts that document against :func:`build_parser`'s argparse tree,
so it cannot drift.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.assay import graph_from_json
from repro.baselines import dawo_plan, immediate_wash_plan
from repro.bench import BENCHMARKS, benchmark, load_benchmark
from repro.core import PDWConfig, optimize_washes
from repro.errors import ReproError
from repro.experiments.__main__ import main as experiments_main
from repro.obs import metrics as obs_metrics
from repro.obs import perf
from repro.obs.trace import tracer
from repro.pipeline import default_cache, default_cache_dir, digest_config
from repro.schedule import render_gantt
from repro.synth import synthesize
from repro.viz import render_chip

_SOLVERS = ("auto", "highs", "branch_bound", "greedy")
_SOLVER_MODES = ("ladder", "race")
_PRESOLVE = ("on", "off")

_METHODS = {
    "pdw": lambda synth, cfg, cache: optimize_washes(synth, cfg, cache=cache),
    "dawo": lambda synth, cfg, cache: dawo_plan(synth, cache=cache),
    "immediate": lambda synth, cfg, cache: immediate_wash_plan(synth),
}


def _print_plan(plan, show_gantt: bool, show_chip: bool, show_stats: bool = False) -> None:
    print(f"method:      {plan.method} ({plan.solver_status} via {plan.solver_rung})")
    for key, value in plan.metrics().items():
        print(f"{key + ':':<13}{value:g}")
    for wash in plan.washes:
        print(
            f"  {wash.id}: [{wash.start}, {wash.end}) s  "
            f"path {' -> '.join(wash.path)}"
        )
    info = getattr(plan, "degradation", None)
    if info is not None:
        print(
            f"degradation: {info.spec}  dead={len(info.dead)} "
            f"coverage={100.0 * info.coverage:.0f}%"
        )
        if info.uncovered_targets:
            print(f"  uncovered: {', '.join(info.uncovered_targets)}")
    for record in getattr(plan, "repairs", ()) or ():
        print(
            f"repair r{record.round}: {record.node}@{record.fail_time} hit "
            f"{record.detected_task} {list(record.window)} -> {record.outcome}"
        )
    if show_stats and plan.report is not None:
        print()
        print(plan.report.render())
    if show_chip:
        print()
        print(render_chip(plan.chip))
    if show_gantt:
        print()
        print(render_gantt(plan.schedule))


def build_parser() -> argparse.ArgumentParser:
    """The complete ``pdw`` argparse tree.

    Exposed separately from :func:`main` so docs/CLI.md can be asserted
    against it (tests/unit/test_docs_cli.py) and never drift.
    """
    parser = argparse.ArgumentParser(prog="pdw", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in benchmarks")

    p_run = sub.add_parser("run", help="optimize a built-in benchmark")
    p_run.add_argument("benchmark", choices=list(BENCHMARKS))
    p_run.add_argument("--method", choices=list(_METHODS), default="pdw")
    p_run.add_argument("--time-limit", type=float, default=120.0)
    p_run.add_argument(
        "--solver", choices=_SOLVERS, default="auto",
        help="pin a solver ladder rung (default: full degradation ladder)",
    )
    p_run.add_argument(
        "--solver-mode", choices=_SOLVER_MODES, default="ladder",
        help="serial degradation ladder (default) or concurrent rung race",
    )
    p_run.add_argument(
        "--presolve", choices=_PRESOLVE, default="on",
        help="ILP model-reduction layer (default on; plans are byte-identical either way)",
    )
    p_run.add_argument("--gantt", action="store_true", help="print the schedule chart")
    p_run.add_argument("--chip", action="store_true", help="print the chip layout")
    p_run.add_argument(
        "--stats", action="store_true", help="print per-stage pipeline timings"
    )
    p_run.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk artifact cache"
    )
    p_run.add_argument(
        "--degrade", default="", metavar="SPEC",
        help="plan on a degraded chip: light|moderate|heavy or "
        "channels=N[:valves=N][:devices=N][:seed=N][:dead=n1+n2] (PDW only)",
    )

    p_assay = sub.add_parser("assay", help="optimize an assay from a JSON file")
    p_assay.add_argument("file", type=Path)
    p_assay.add_argument("--method", choices=list(_METHODS), default="pdw")
    p_assay.add_argument("--time-limit", type=float, default=120.0)
    p_assay.add_argument("--solver", choices=_SOLVERS, default="auto")
    p_assay.add_argument("--solver-mode", choices=_SOLVER_MODES, default="ladder")
    p_assay.add_argument("--presolve", choices=_PRESOLVE, default="on")
    p_assay.add_argument("--gantt", action="store_true")
    p_assay.add_argument("--chip", action="store_true")
    p_assay.add_argument("--stats", action="store_true")
    p_assay.add_argument("--no-cache", action="store_true")

    p_report = sub.add_parser(
        "report", help="regenerate the paper's tables/figures, or render a trace"
    )
    p_report.add_argument(
        "name",
        choices=(
            "table2", "fig4", "fig5", "ablation", "necessity", "pareto",
            "timings", "failures", "degrade", "trace", "all",
        ),
    )
    p_report.add_argument(
        "benchmark", nargs="?", choices=list(BENCHMARKS), default=None,
        help="benchmark to trace (required by 'report trace', ignored otherwise)",
    )
    p_report.add_argument("--time-limit", type=float, default=120.0)
    p_report.add_argument(
        "--method", choices=list(_METHODS), default="pdw",
        help="trace: which optimizer to run under the tracer",
    )
    p_report.add_argument(
        "--no-cache", action="store_true",
        help="trace: bypass the artifact cache so every stage computes",
    )

    p_suite = sub.add_parser(
        "suite", help="run benchmarks under the fault-tolerant supervisor"
    )
    # nargs="*" + choices rejects the zero-arg case on Python < 3.12
    # (bpo-9625), so benchmark lists are validated by _check_benchmarks.
    p_suite.add_argument(
        "benchmarks", nargs="*", metavar="benchmark", default=None,
        help=f"benchmarks to run (default: the full suite; one of {', '.join(BENCHMARKS)})",
    )
    p_suite.add_argument("--time-limit", type=float, default=120.0)
    p_suite.add_argument(
        "--solver-mode", choices=_SOLVER_MODES, default="ladder",
        help="serial degradation ladder (default) or concurrent rung race",
    )
    p_suite.add_argument(
        "--presolve", choices=_PRESOLVE, default="on",
        help="ILP model-reduction layer (default on; plans are byte-identical either way)",
    )
    p_suite.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-benchmark wall-clock budget in seconds",
    )
    p_suite.add_argument(
        "--retries", type=int, default=0,
        help="retry crashed/timed-out benchmarks up to N times",
    )
    p_suite.add_argument(
        "--resume", action="store_true",
        help="skip benchmarks the run journal already records as succeeded",
    )
    p_suite.add_argument(
        "--max-rss", type=float, default=None, metavar="MB",
        help="best-effort per-run address-space cap in MiB",
    )
    p_suite.add_argument("--workers", type=int, default=None)
    p_suite.add_argument(
        "--sched-workers", type=int, default=None, metavar="N",
        help="run the suite as a stage DAG on N scheduler workers "
        "(node-granular retries/resume; plans stay byte-identical to serial)",
    )
    p_suite.add_argument(
        "--degrade", default="", metavar="SPEC",
        help="run the degradation matrix instead of the supervised suite: "
        "comma-separated scenarios (light|moderate|heavy or key=value specs)",
    )
    p_suite.add_argument(
        "--degrade-online", nargs="?", const="auto", default=None,
        metavar="NODE@TICK",
        help="additionally inject a mid-execution channel failure per cell "
        "and run the detect→replan repair loop ('auto' picks one "
        "deterministically)",
    )
    p_suite.add_argument("--no-cache", action="store_true")

    p_bench = sub.add_parser(
        "bench", help="cold-run perf baselines: medians/p95 per stage and rung"
    )
    p_bench.add_argument(
        "benchmarks", nargs="*", metavar="benchmark", default=None,
        help="benchmark matrix (default: the full Table II suite)",
    )
    p_bench.add_argument("--time-limit", type=float, default=120.0)
    p_bench.add_argument(
        "--solver-mode", choices=_SOLVER_MODES, default="ladder",
        help="serial degradation ladder (default) or concurrent rung race",
    )
    p_bench.add_argument(
        "--presolve", choices=_PRESOLVE, default="on",
        help="ILP model-reduction layer (default on; plans are byte-identical either way)",
    )
    p_bench.add_argument(
        "--iterations", type=int, default=perf.DEFAULT_ITERATIONS,
        help="cold samples per benchmark (median/p95 are taken over these)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help=f"smoke matrix: one iteration of {perf.QUICK_BENCHMARK} only",
    )
    p_bench.add_argument(
        "--out", type=Path, default=None,
        help="output file (default: BENCH_<git-sha>.json in the CWD)",
    )
    p_bench.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="gate this run against a baseline artifact; exit 1 on regression",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=25.0, metavar="PCT",
        help="allowed hot-path median growth in percent (default 25)",
    )
    p_bench.add_argument(
        "--sched-workers", type=int, default=None, metavar="N",
        help="also time one cold whole-suite pass through the DAG executor "
        "at N workers and record it as the artifact's 'suite' section",
    )

    p_cache = sub.add_parser("cache", help="inspect, verify, or clear the artifact cache")
    p_cache.add_argument("action", choices=("info", "clear", "verify", "gc"))
    p_cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="gc: evict oldest entries until the cache fits this many bytes",
    )
    p_cache.add_argument(
        "--cache", default=None, metavar="DIR", dest="cache_dir",
        help="operate on this cache directory (beats $REPRO_CACHE_DIR beats "
        "~/.cache/repro-pdw)",
    )

    p_serve = sub.add_parser(
        "serve", help="long-running optimization-as-a-service job server"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 to expose)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8977,
        help="TCP port (default 8977; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="job executor threads (default 2)",
    )
    p_serve.add_argument(
        "--queue-cap", type=int, default=64, metavar="N",
        help="bounded admission: queued-job cap before submits get 429 "
        "(default 64)",
    )
    p_serve.add_argument(
        "--cache", default=None, metavar="DIR", dest="cache_dir",
        help="artifact cache directory (beats $REPRO_CACHE_DIR beats "
        "~/.cache/repro-pdw)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-job wall-clock budget in seconds (default 600)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true", help="bypass the artifact cache"
    )

    p_cost = sub.add_parser("cost", help="chip cost report + plan comparison")
    p_cost.add_argument("benchmark", choices=list(BENCHMARKS))
    p_cost.add_argument("--time-limit", type=float, default=120.0)

    p_sim = sub.add_parser("simulate", help="discrete-event execution log")
    p_sim.add_argument("benchmark", choices=list(BENCHMARKS))
    p_sim.add_argument("--method", choices=list(_METHODS), default="pdw")
    p_sim.add_argument("--time-limit", type=float, default=120.0)
    p_sim.add_argument("--events", action="store_true", help="print every event")

    p_export = sub.add_parser(
        "export", help="export plan/actuation/SVG/trace/metrics artifacts"
    )
    p_export.add_argument("benchmark", choices=list(BENCHMARKS))
    p_export.add_argument(
        "--what",
        choices=("plan", "actuation", "svg", "trace", "metrics"),
        default="plan",
        help="trace = Chrome-trace JSON (about:tracing / Perfetto); "
        "metrics = the run's metrics registry",
    )
    p_export.add_argument("--method", choices=list(_METHODS), default="pdw")
    p_export.add_argument("--time-limit", type=float, default=120.0)
    p_export.add_argument(
        "--format", choices=("json", "prom"), default="json", dest="format",
        help="metrics only: JSON snapshot or Prometheus text exposition",
    )
    p_export.add_argument("--out", type=Path, default=None, help="output file (default stdout)")
    return parser


def _check_benchmarks(names: list[str] | None) -> None:
    """Manual benchmark-name validation for ``nargs="*"`` positionals."""
    for name in names or ():
        if name not in BENCHMARKS:
            raise ReproError(
                f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARKS)}"
            )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # Every library failure surfaces as a clean one-line error, never a
        # traceback — infeasible ILPs, malformed assays, solver breakdowns.
        print(f"pdw: error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name, spec in BENCHMARKS.items():
            print(
                f"{name:15s} |O|={spec.expected_ops:3d} "
                f"|D|={spec.expected_devices:3d} |E|={spec.expected_edges:3d}"
            )
        return 0

    if args.command == "report":
        if args.name == "failures":
            from repro.experiments.supervisor import failures_report

            print(failures_report())
            return 0
        if args.name == "degrade":
            from repro.degrade.report import degrade_report

            print(degrade_report())
            return 0
        if args.name == "trace":
            return _run_report_trace(args)
        return experiments_main([args.name, "--time-limit", str(args.time_limit)])

    if args.command == "suite":
        _check_benchmarks(args.benchmarks)
        return _run_suite_cmd(args)

    if args.command == "bench":
        _check_benchmarks(args.benchmarks)
        return _run_bench_cmd(args)

    if args.command == "cache":
        return _run_cache(
            args.action, getattr(args, "max_bytes", None), args.cache_dir
        )

    if args.command == "serve":
        return _run_serve(args)

    degrade = getattr(args, "degrade", "")
    if degrade and args.method != "pdw":
        raise ReproError(
            "--degrade is a PDW capability; the baselines have no "
            "avoid-set routing (use --method pdw)"
        )
    config = PDWConfig(
        time_limit_s=args.time_limit,
        solver=getattr(args, "solver", "auto"),
        solver_mode=getattr(args, "solver_mode", "ladder"),
        presolve=getattr(args, "presolve", "on"),
        degrade=degrade,
    )

    if args.command == "cost":
        return _run_cost(args.benchmark, config)
    if args.command == "simulate":
        return _run_simulate(args.benchmark, args.method, config, args.events)
    if args.command == "export":
        return _run_export(
            args.benchmark, args.what, args.method, config, args.out, args.format
        )

    if args.command == "run":
        spec = benchmark(args.benchmark)
        synth = synthesize(load_benchmark(args.benchmark), inventory=spec.inventory)
    else:
        text = args.file.read_text()
        if args.file.suffix == ".json":
            assay = graph_from_json(text)
        else:  # .dsl / .assay text format
            from repro.assay import parse_assay

            assay = parse_assay(text)
        synth = synthesize(assay)
    cache = None if args.no_cache else default_cache()
    plan = _METHODS[args.method](synth, config, cache)
    _print_plan(plan, args.gantt, args.chip, args.stats)
    return 0


def _run_suite_cmd(args: argparse.Namespace) -> int:
    from repro.experiments.runner import FailureRecord, run_suite
    from repro.experiments.supervisor import RunBudget, SuiteSupervisor

    config = PDWConfig(
        time_limit_s=args.time_limit,
        solver_mode=getattr(args, "solver_mode", "ladder"),
        presolve=getattr(args, "presolve", "on"),
    )
    budget = RunBudget(
        timeout_s=args.timeout,
        max_rss_bytes=int(args.max_rss * 2**20) if args.max_rss else None,
        retries=max(0, args.retries),
    )
    cache = None if args.no_cache else default_cache()
    if args.degrade or args.degrade_online is not None:
        return _run_degrade_matrix_cmd(args, config, cache)
    if args.sched_workers is not None:
        from repro.sched.executor import DagExecutor

        # The DAG executor duck-types SuiteSupervisor.run, so the rest of
        # this command (result rendering, exit codes) is shared verbatim.
        supervisor = DagExecutor(
            budget=budget,
            cache=cache,
            use_cache=not args.no_cache,
            workers=args.sched_workers,
            resume=args.resume,
        )
    else:
        supervisor = SuiteSupervisor(
            budget=budget,
            cache=cache,
            use_cache=not args.no_cache,
            workers=args.workers,
            resume=args.resume,
        )
    result = run_suite(
        args.benchmarks or None, config, cache=cache, supervisor=supervisor
    )
    for entry in result:
        if isinstance(entry, FailureRecord):
            print(
                f"{entry.name:15s} {entry.label}  "
                f"attempts={entry.attempts}  {entry.message}"
            )
        else:
            origin = "journal" if entry.name in result.resumed else (
                "cache" if entry.from_cache else "run"
            )
            print(
                f"{entry.name:15s} OK ({origin})  "
                f"wall={entry.wall_time_s:.2f}s  "
                f"T_assay pdw={entry.pdw.metrics()['t_assay_s']:g}s"
            )
    ok = len(result.runs)
    print(f"{ok}/{len(result)} benchmarks succeeded; journal: {result.journal_path}")
    if result.metrics_path is not None:
        print(f"merged metrics dump: {result.metrics_path}")
    return 0 if not result.failures else 3


def _run_degrade_matrix_cmd(args: argparse.Namespace, config, cache) -> int:
    """``pdw suite --degrade``: the benchmark × scenario robustness matrix."""
    from repro.degrade.suite import run_degrade_matrix

    result = run_degrade_matrix(
        names=args.benchmarks or None,
        scenarios=args.degrade,
        config=config,
        cache=cache,
        online=args.degrade_online,
    )
    print(result.render())
    ok = sum(1 for row in result.rows if row.ok)
    print(f"{ok}/{len(result.rows)} cells succeeded; journal: {result.journal_path}")
    return 0 if result.ok else 3


def _run_report_trace(args: argparse.Namespace) -> int:
    """``pdw report trace <benchmark>``: run under the tracer, render the tree."""
    from repro.experiments.runner import run_benchmark

    if args.benchmark is None:
        raise ReproError("'pdw report trace' needs a benchmark name")
    tracer().enable()
    tracer().clear()
    config = PDWConfig(time_limit_s=args.time_limit)
    run_benchmark(args.benchmark, config, use_cache=not args.no_cache)
    print(f"trace of {args.benchmark} (config {digest_config(config)[:12]})")
    print(tracer().render_tree())
    return 0


def _run_bench_cmd(args: argparse.Namespace) -> int:
    """``pdw bench``: perf baselines + optional regression gate."""
    config = PDWConfig(
        time_limit_s=args.time_limit,
        solver_mode=getattr(args, "solver_mode", "ladder"),
        presolve=getattr(args, "presolve", "on"),
    )
    result = perf.run_bench(
        names=args.benchmarks or None,
        config=config,
        iterations=args.iterations,
        quick=args.quick,
        progress=lambda line: print(f"  {line}"),
        sched_workers=args.sched_workers,
    )
    out = args.out if args.out is not None else result.default_path(Path.cwd())
    out.write_text(result.to_json() + "\n", encoding="utf-8")
    print(f"wrote bench baseline to {out} (config {result.payload['config_digest'][:12]})")
    if args.compare is None:
        return 0
    baseline = perf.load_bench(args.compare)
    report = perf.compare_bench(
        result.payload, baseline, threshold_pct=args.threshold
    )
    print(report.render(), end="")
    return 0 if report.ok else 1


def _run_serve(args: argparse.Namespace) -> int:
    """``pdw serve``: the optimization-as-a-service front door (DESIGN.md §15)."""
    from repro.serve import JobServer

    server = JobServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_cap=args.queue_cap,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        job_timeout_s=args.timeout,
    )
    # The readiness line goes to stdout *flushed* so harnesses (CI, the
    # TUTORIAL §10 walkthrough) can wait on it before the first request.
    print(f"pdw serve listening on http://{server.host}:{server.port}", flush=True)
    server.serve_forever(install_signals=True)
    print("pdw serve: shut down cleanly", flush=True)
    return 0


def _run_cache(
    action: str, max_bytes: int | None = None, cache_dir: str | None = None
) -> int:
    cache = default_cache(cache_dir)
    if cache is None:
        print("artifact cache disabled (REPRO_CACHE=off)")
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} artifacts from {cache.root}")
        return 0
    if action == "verify":
        report = cache.verify()
        print(report.render())
        return 1 if report.quarantined else 0
    if action == "gc":
        removed, freed = cache.gc(max_bytes)
        print(f"evicted {removed} artifacts ({freed} bytes) from {cache.root}")
        return 0
    count, total = cache.stats()
    print(f"cache dir:   {default_cache_dir(cache_dir)}")
    print(f"artifacts:   {count}")
    print(f"total bytes: {total}")
    return 0


def _run_cost(bench_name: str, config: PDWConfig) -> int:
    from repro.analysis import chip_cost, compare_plans

    spec = benchmark(bench_name)
    synth = synthesize(load_benchmark(bench_name), inventory=spec.inventory)
    cache = default_cache()
    pdw = _METHODS["pdw"](synth, config, cache)
    dawo = _METHODS["dawo"](synth, config, cache)

    print(f"chip cost of {bench_name} (baseline schedule):")
    for key, value in chip_cost(synth.chip, synth.schedule).as_dict().items():
        print(f"  {key:<20}{value:g}")
    print()
    print(compare_plans([pdw, dawo]))
    return 0


def _run_export(
    bench_name: str,
    what: str,
    method: str,
    config: PDWConfig,
    out: Path | None,
    fmt: str = "json",
) -> int:
    from repro.export import actuation_program, plan_to_json, render_svg

    if what in ("trace", "metrics"):
        # Observe a fresh run: clear the collectors, trace the whole
        # optimization, and stamp the artifact with the config digest.
        tracer().enable()
        tracer().clear()
        obs_metrics.reset()

    spec = benchmark(bench_name)
    synth = synthesize(load_benchmark(bench_name), inventory=spec.inventory)
    plan = _METHODS[method](synth, config, default_cache())
    if what == "plan":
        text = plan_to_json(plan)
    elif what == "actuation":
        text = actuation_program(synth.chip, plan.schedule)
    elif what == "trace":
        text = tracer().chrome_trace(config_digest=digest_config(config))
    elif what == "metrics":
        if fmt == "prom":
            text = obs_metrics.registry().render_prometheus()
        else:
            import json as _json

            payload = {
                **obs_metrics.snapshot(),
                "config_digest": digest_config(config),
                "benchmark": bench_name,
            }
            text = _json.dumps(payload, indent=2, sort_keys=True)
    else:
        text = render_svg(synth.chip, paths=[w.path for w in plan.washes])
    if out is None:
        print(text)
    else:
        out.write_text(text)
        print(f"wrote {what} artifact to {out}")
    return 0


def _run_simulate(bench_name: str, method: str, config: PDWConfig, events: bool) -> int:
    from repro.sim import simulate_plan

    spec = benchmark(bench_name)
    synth = synthesize(load_benchmark(bench_name), inventory=spec.inventory)
    plan = _METHODS[method](synth, config, default_cache())
    report = simulate_plan(plan, synth)
    print(f"{plan.method} plan on {bench_name}: {report.summary()}")
    print("execution " + ("OK" if report.ok else "BROKEN"))
    shown = report.events if events else report.anomalies
    for event in shown:
        print(f"  {event}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
