"""PathDriver-Wash: path-driven wash optimization for continuous-flow
lab-on-a-chip biochips.

A from-scratch reproduction of *PathDriver-Wash: A Path-Driven Wash
Optimization Method for Continuous-Flow Lab-on-a-Chip Systems* (DATE 2024),
including every substrate the method depends on: a chip architecture model,
a PathDriver-style synthesis flow, a contamination engine, an ILP modeling
layer, and the DAWO baseline.

Quickstart
----------
>>> from repro import load_benchmark, benchmark, synthesize, optimize_washes
>>> spec = benchmark("PCR")
>>> synthesis = synthesize(load_benchmark("PCR"), inventory=spec.inventory)
>>> plan = optimize_washes(synthesis)
>>> plan.n_wash >= 1
True

See ``examples/`` for runnable end-to-end scripts and
``python -m repro.experiments all`` to regenerate the paper's evaluation.
"""

from repro.analysis import VolumeModel, chip_cost, compare_plans
from repro.arch import Chip, ChipBuilder, Device, DeviceKind, Grid, Router, figure2_chip
from repro.arch.control import ControlLayer
from repro.arch.io import chip_from_json, chip_to_json
from repro.assay import Operation, Reagent, SequencingGraph, format_assay, parse_assay
from repro.baselines import dawo_plan, immediate_wash_plan
from repro.bench import BENCHMARKS, benchmark, benchmark_names, load_benchmark
from repro.contam import (
    ContaminationTracker,
    NecessityPolicy,
    contamination_violations,
    wash_requirements,
)
from repro.core import PDWConfig, PathDriverWash, WashPlan, optimize_washes
from repro.errors import ReproError
from repro.export import actuation_program, plan_to_json
from repro.schedule import Schedule, ScheduledTask, TaskKind, render_gantt
from repro.sim import ScheduleExecutor, simulate_plan
from repro.synth import ArchSpec, SynthesisResult, synthesize
from repro.units import PhysicalParameters
from repro.viz import render_chip
from repro.viz.svg import render_svg

__version__ = "1.0.0"

__all__ = [
    "ArchSpec",
    "BENCHMARKS",
    "Chip",
    "ChipBuilder",
    "ContaminationTracker",
    "ControlLayer",
    "Device",
    "DeviceKind",
    "Grid",
    "NecessityPolicy",
    "Operation",
    "PDWConfig",
    "PathDriverWash",
    "PhysicalParameters",
    "Reagent",
    "ReproError",
    "Router",
    "Schedule",
    "ScheduleExecutor",
    "ScheduledTask",
    "SequencingGraph",
    "SynthesisResult",
    "TaskKind",
    "VolumeModel",
    "WashPlan",
    "actuation_program",
    "benchmark",
    "benchmark_names",
    "chip_cost",
    "chip_from_json",
    "chip_to_json",
    "compare_plans",
    "contamination_violations",
    "dawo_plan",
    "figure2_chip",
    "format_assay",
    "immediate_wash_plan",
    "load_benchmark",
    "optimize_washes",
    "parse_assay",
    "plan_to_json",
    "render_chip",
    "render_gantt",
    "render_svg",
    "simulate_plan",
    "synthesize",
    "wash_requirements",
    "__version__",
]
