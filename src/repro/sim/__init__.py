"""Discrete-event simulation of assay executions.

The :mod:`repro.contam` verifier checks residue safety; this package goes
further and *executes* a schedule operationally: reagents are drawn from
their flow ports, plugs move along their paths, devices hold concrete
contents that operations consume and produce, washes flush residues, and
waste leaves through waste ports.  Any mismatch — a transport leaving an
empty device, an operation starting without its inputs, a plug crossing a
foreign residue — becomes a typed simulation event.

This catches bugs the residue checker cannot, e.g. a schedule that moves a
product out of a device before the producing operation ran.
"""

from repro.sim.events import SimEvent, SimEventKind, SimReport
from repro.sim.executor import ScheduleExecutor, simulate_plan
from repro.sim.validate import (
    PlanValidationError,
    ValidationProblem,
    degraded_validation_problems,
    validate_plan,
    validation_problems,
)

__all__ = [
    "PlanValidationError",
    "ScheduleExecutor",
    "SimEvent",
    "SimEventKind",
    "SimReport",
    "ValidationProblem",
    "degraded_validation_problems",
    "simulate_plan",
    "validate_plan",
    "validation_problems",
]
