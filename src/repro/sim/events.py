"""Typed events produced by the schedule executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class SimEventKind(enum.Enum):
    """What happened during simulation."""

    INJECTION = "injection"            # reagent drawn from a flow port
    PLUG_MOVED = "plug_moved"          # fluid transported between devices
    OPERATION_RUN = "operation_run"    # device consumed inputs, made output
    EXCESS_FLUSHED = "excess_flushed"  # excess-removal flow executed
    WASTE_DISPOSED = "waste_disposed"  # product left through a waste port
    WASH_RUN = "wash_run"              # buffer flush cleaned its path

    # anomalies
    MISSING_CONTENT = "missing_content"      # transport from an empty device
    MISSING_INPUT = "missing_input"          # operation without its inputs
    CROSS_CONTAMINATION = "cross_contamination"
    WRONG_PORT = "wrong_port"                # injection from an unassigned port
    LEFTOVER_CONTENT = "leftover_content"    # device still loaded at the end
    DEAD_NODE_TRAVERSED = "dead_node_traversed"  # task occupies a failed node

    @property
    def is_anomaly(self) -> bool:
        """Whether this event kind indicates a broken schedule."""
        return self in (
            SimEventKind.MISSING_CONTENT,
            SimEventKind.MISSING_INPUT,
            SimEventKind.CROSS_CONTAMINATION,
            SimEventKind.WRONG_PORT,
            SimEventKind.LEFTOVER_CONTENT,
            SimEventKind.DEAD_NODE_TRAVERSED,
        )


@dataclass(frozen=True)
class SimEvent:
    """One simulation event.

    ``node`` is populated where the anomaly is localized to one chip node
    (contamination site, failed channel, affected device) — the online
    degradation monitor and the structured validation problems key on it.
    """

    kind: SimEventKind
    time: int
    task_id: str
    detail: str = ""
    node: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[t={self.time:>4}] {self.kind.value:<20} {self.task_id} {self.detail}"


@dataclass
class SimReport:
    """Outcome of one simulated execution."""

    events: List[SimEvent] = field(default_factory=list)

    def record(
        self,
        kind: SimEventKind,
        time: int,
        task_id: str,
        detail: str = "",
        node: Optional[str] = None,
    ) -> None:
        """Append one event."""
        self.events.append(SimEvent(kind, time, task_id, detail, node))

    @property
    def anomalies(self) -> List[SimEvent]:
        """All events indicating a broken schedule."""
        return [e for e in self.events if e.kind.is_anomaly]

    @property
    def ok(self) -> bool:
        """Whether the execution completed without anomalies."""
        return not self.anomalies

    def count(self, kind: SimEventKind) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind is kind)

    def summary(self) -> str:
        """One-line event-count summary."""
        parts = []
        for kind in SimEventKind:
            n = self.count(kind)
            if n:
                parts.append(f"{kind.value}={n}")
        return ", ".join(parts) or "(no events)"
