"""The discrete-event schedule executor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.assay.fluids import BUFFER_TYPE
from repro.core.plan import WashPlan
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind
from repro.sim.events import SimEventKind, SimReport
from repro.synth.synthesis import SynthesisResult


@dataclass
class _Residue:
    fluid: str
    lineage: FrozenSet[str]


class ScheduleExecutor:
    """Operationally execute a (possibly wash-extended) schedule.

    The executor tracks three kinds of state:

    * per-node **residue** (latest fluid that crossed the node),
    * per-device **content** — which sequencing-graph product currently
      sits in the device, with how many consumer shares remain,
    * per-device **input buffer** — which inputs have been delivered for
      the next operation.

    ``dead_nodes`` (node → failure tick) arms the degradation monitor:
    any task still occupying a failed node after its failure tick raises
    a :attr:`~repro.sim.events.SimEventKind.DEAD_NODE_TRAVERSED` anomaly.
    A tick of ``-1`` means dead from the start (static validation); a
    mid-execution tick is the online fault-injection hook — tasks that
    *finished* on the node before it failed are legitimately unaffected.
    """

    def __init__(
        self,
        synthesis: SynthesisResult,
        schedule: Optional[Schedule] = None,
        dead_nodes: Optional[Mapping[str, int]] = None,
    ):
        self.synthesis = synthesis
        self.chip = synthesis.chip
        self.assay = synthesis.assay
        self.schedule = schedule if schedule is not None else synthesis.schedule
        self.fluid_types = synthesis.fluid_types
        self.dead_nodes: Dict[str, int] = dict(dead_nodes or {})

    # -- public API --------------------------------------------------------------

    def run(self) -> SimReport:
        """Execute all tasks in time order and return the event log."""
        report = SimReport()
        residue: Dict[str, _Residue] = {}
        content: Dict[str, Tuple[str, int]] = {}   # device -> (node id, shares)
        inputs: Dict[str, Set[str]] = {}           # op id -> delivered inputs

        consumer_count = {
            op.id: len(self.assay.consumers_of(op.id))
            for op in self.assay.operations
        }

        for task in sorted(self.schedule.tasks(), key=lambda t: (t.start, t.end, t.id)):
            if self.dead_nodes:
                self._check_dead_nodes(task, report)
            handler = {
                TaskKind.TRANSPORT: self._run_transport,
                TaskKind.REMOVAL: self._run_removal,
                TaskKind.WASTE: self._run_waste,
                TaskKind.WASH: self._run_wash,
                TaskKind.OPERATION: self._run_operation,
            }[task.kind]
            handler(task, report, residue, content, inputs, consumer_count)

        for device, (node, shares) in sorted(content.items()):
            if shares > 0:
                report.record(
                    SimEventKind.LEFTOVER_CONTENT, self.schedule.makespan, f"dev:{device}",
                    f"{node} still loaded ({shares} shares unconsumed)",
                    node=device,
                )
        return report

    # -- task handlers -------------------------------------------------------------

    def _lineage(self, task: ScheduledTask) -> FrozenSet[str]:
        if task.kind is TaskKind.OPERATION and task.op_id is not None:
            return frozenset({task.op_id} | set(self.assay.inputs_of(task.op_id)))
        if task.edge is not None:
            return frozenset(task.edge)
        return frozenset()

    def _check_dead_nodes(self, task: ScheduledTask, report: SimReport) -> None:
        """Flag ``task`` if it occupies a failed node past its failure tick.

        The violated interval is the task's own [start, end): the first
        task reported here (executor order: start, end, id) is exactly
        the first interval the online repair loop must fix.
        """
        occupied = set(task.path or ())
        if task.device is not None:
            occupied.add(task.device)
        for node in sorted(occupied):
            fail_at = self.dead_nodes.get(node)
            if fail_at is not None and task.end > fail_at:
                report.record(
                    SimEventKind.DEAD_NODE_TRAVERSED, task.start, task.id,
                    f"{node} failed at t={fail_at}, occupied until t={task.end}",
                    node=node,
                )

    def _check_contamination(
        self,
        task: ScheduledTask,
        report: SimReport,
        residue: Dict[str, _Residue],
    ) -> None:
        lineage = self._lineage(task)
        for node in task.path or ():
            if self.chip.is_port(node):
                continue
            current = residue.get(node)
            if (
                current is not None
                and task.fluid_type is not None
                and current.fluid not in (task.fluid_type, BUFFER_TYPE)
                and not (current.lineage & lineage)
            ):
                report.record(
                    SimEventKind.CROSS_CONTAMINATION, task.start, task.id,
                    f"{node}: {current.fluid!r} under {task.fluid_type!r}",
                    node=node,
                )

    def _deposit(self, task: ScheduledTask, residue: Dict[str, _Residue]) -> None:
        lineage = self._lineage(task)
        for node in task.path or ():
            if not self.chip.is_port(node) and task.fluid_type is not None:
                residue[node] = _Residue(task.fluid_type, lineage)

    def _run_transport(self, task, report, residue, content, inputs, consumer_count):
        src, dst = task.edge
        if self.assay.is_reagent(src):
            expected = self.synthesis.reagent_ports.get(src)
            if expected is not None and task.path[0] != expected:
                report.record(
                    SimEventKind.WRONG_PORT, task.start, task.id,
                    f"reagent {src!r} assigned to {expected!r}, drawn from {task.path[0]!r}",
                    node=task.path[0],
                )
            report.record(SimEventKind.INJECTION, task.start, task.id,
                          f"{src} from {task.path[0]}")
        else:
            device = self.synthesis.binding[src]
            held = content.get(device)
            if held is None or held[0] != src or held[1] <= 0:
                report.record(
                    SimEventKind.MISSING_CONTENT, task.start, task.id,
                    f"device {device!r} does not hold {src!r}",
                    node=device,
                )
            else:
                shares = held[1] - 1
                if shares:
                    content[device] = (src, shares)
                else:
                    del content[device]
            report.record(SimEventKind.PLUG_MOVED, task.start, task.id,
                          f"{src} -> {dst}")
        self._check_contamination(task, report, residue)
        self._deposit(task, residue)
        inputs.setdefault(dst, set()).add(src)

    def _run_removal(self, task, report, residue, content, inputs, consumer_count):
        # Excess fluid is discarded: no contamination check, but the flow
        # leaves its own residue behind.
        self._deposit(task, residue)
        report.record(SimEventKind.EXCESS_FLUSHED, task.start, task.id)

    def _run_waste(self, task, report, residue, content, inputs, consumer_count):
        src = task.edge[0] if task.edge else None
        if src is not None and not self.assay.is_reagent(src):
            device = self.synthesis.binding.get(src)
            held = content.get(device) if device else None
            if held is not None and held[0] == src:
                del content[device]
        self._deposit(task, residue)
        report.record(SimEventKind.WASTE_DISPOSED, task.start, task.id)

    def _run_wash(self, task, report, residue, content, inputs, consumer_count):
        for node in task.path or ():
            residue.pop(node, None)
        report.record(SimEventKind.WASH_RUN, task.start, task.id,
                      f"{len(task.path or ())} nodes flushed")

    def _run_operation(self, task, report, residue, content, inputs, consumer_count):
        op_id = task.op_id
        device = task.device
        needed = set(self.assay.inputs_of(op_id))
        delivered = set(inputs.get(op_id, ()))
        # Same-device producers hand their output over without a transport.
        held = content.get(device)
        if held is not None and held[0] in needed:
            delivered.add(held[0])
            shares = held[1] - 1
            if shares:
                content[device] = (held[0], shares)
            else:
                del content[device]
        missing = needed - delivered
        if missing:
            report.record(
                SimEventKind.MISSING_INPUT, task.start, task.id,
                f"{op_id} missing {sorted(missing)}",
                node=device,
            )
        shares = consumer_count[op_id]
        if shares == 0:
            shares = 1  # terminal products occupy the device until disposal
        content[device] = (op_id, shares)
        residue[device] = _Residue(task.fluid_type, self._lineage(task))
        report.record(SimEventKind.OPERATION_RUN, task.start, task.id,
                      f"{op_id} on {device}")


def simulate_plan(plan: WashPlan, synthesis: SynthesisResult) -> SimReport:
    """Execute a wash plan's final schedule operationally."""
    return ScheduleExecutor(synthesis, plan.schedule).run()
