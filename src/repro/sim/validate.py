"""Independent wash-plan validation by operational replay.

The optimizers each carry their own invariants (the ILP's constraints, the
sweep-line's timeline); this module trusts none of them.  Every emitted
:class:`~repro.core.plan.WashPlan` is replayed through the
:class:`~repro.sim.executor.ScheduleExecutor` and cross-checked
structurally, failing loudly on:

* **resource conflicts** — two tasks overlapping on a chip node,
* **execution anomalies** — any :class:`~repro.sim.events.SimEventKind`
  anomaly (cross-contamination, missing inputs/content, wrong ports,
  leftover content, dead-node traversal) raised while executing the
  schedule operationally,
* **dropped tasks** — a baseline task absent from the final schedule that
  no wash absorbed (ψ-integration is the only legal removal).

Problems are **structured** (:class:`ValidationProblem`: kind, task ids,
node, violated time window) rather than bare strings — the online
degradation monitor consumes the violated interval directly, and failure
reports can render the full context instead of a truncated message.

This is the safety net under the solver degradation ladder: a plan built
by a lower rung (branch-and-bound, greedy assembly) passes exactly the
same gauntlet as an optimal one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.core.plan import WashPlan
from repro.errors import DegradedInfeasibleError, SchedulingError, WashError
from repro.obs.metrics import registry
from repro.obs.trace import span
from repro.sim.events import SimEvent, SimEventKind
from repro.sim.executor import ScheduleExecutor
from repro.synth.synthesis import SynthesisResult


@dataclass(frozen=True)
class ValidationProblem:
    """One structured validation violation.

    ``kind`` is ``"conflict"``, ``"dropped_task"`` or a
    :class:`~repro.sim.events.SimEventKind` value; ``start``/``end`` is
    the violated time window where one is known (the online repair loop
    keys on it); ``node`` localizes the violation on the chip.
    """

    kind: str
    task_id: str = ""
    #: Second task involved (resource conflicts only).
    other_task_id: str = ""
    node: Optional[str] = None
    start: Optional[int] = None
    end: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = f" at {self.node}" if self.node else ""
        window = (
            f" in [{self.start}, {self.end})"
            if self.start is not None and self.end is not None
            else (f" at t={self.start}" if self.start is not None else "")
        )
        who = self.task_id
        if self.other_task_id:
            who = f"{self.task_id}+{self.other_task_id}"
        tail = f": {self.detail}" if self.detail else ""
        return f"{self.kind} ({who}){where}{window}{tail}"


class PlanValidationError(WashError):
    """A wash plan failed independent validation.

    ``problems`` lists every violation found (as structured
    :class:`ValidationProblem` records), not just the first.
    """

    def __init__(self, method: str, problems: List[ValidationProblem]):
        self.problems = list(problems)
        shown = "; ".join(str(p) for p in self.problems[:5])
        more = f" (+{len(self.problems) - 5} more)" if len(self.problems) > 5 else ""
        super().__init__(f"{method} plan failed validation: {shown}{more}")


def _task(plan: WashPlan, task_id: str):
    """The scheduled task behind an id, or ``None`` for synthetic ids
    (the executor reports leftover content under ``dev:<device>``)."""
    try:
        return plan.schedule.get(task_id)
    except SchedulingError:
        return None


def _conflict_problem(plan: WashPlan, a_id: str, b_id: str) -> ValidationProblem:
    """Structure one resource conflict: overlap window + a shared node."""
    a, b = _task(plan, a_id), _task(plan, b_id)
    start = end = None
    node = None
    if a is not None and b is not None:
        start, end = max(a.start, b.start), min(a.end, b.end)
        shared = sorted(set(a.path or ()) & set(b.path or ()))
        node = shared[0] if shared else None
    return ValidationProblem(
        kind="conflict",
        task_id=a_id,
        other_task_id=b_id,
        node=node,
        start=start,
        end=end,
        detail="tasks overlap on the chip",
    )


def _anomaly_problem(plan: WashPlan, event: SimEvent) -> ValidationProblem:
    """Structure one executor anomaly, resolving the task's time window."""
    task = _task(plan, event.task_id)
    end = task.end if task is not None else None
    return ValidationProblem(
        kind=event.kind.value,
        task_id=event.task_id,
        node=event.node,
        start=event.time,
        end=end,
        detail=event.detail,
    )


def validation_problems(
    plan: WashPlan,
    synthesis: SynthesisResult,
    dead_nodes: Optional[Mapping[str, int]] = None,
) -> List[ValidationProblem]:
    """All validation violations of ``plan``; empty when the plan is sound.

    ``dead_nodes`` (node → failure tick) additionally replays the
    schedule against a degraded chip: any task occupying a failed node
    past its failure tick becomes a ``dead_node_traversed`` problem.
    """
    problems: List[ValidationProblem] = []

    for a_id, b_id in plan.schedule.conflicts()[:10]:
        problems.append(_conflict_problem(plan, a_id, b_id))

    absorbed = {rm for w in plan.washes for rm in w.absorbed_removals}
    scheduled = {t.id for t in plan.schedule.tasks()}
    for task in plan.baseline_schedule.tasks():
        if task.id not in scheduled and task.id not in absorbed:
            problems.append(
                ValidationProblem(
                    kind="dropped_task",
                    task_id=task.id,
                    start=task.start,
                    end=task.end,
                    detail="baseline task dropped without absorption",
                )
            )

    report = ScheduleExecutor(synthesis, plan.schedule, dead_nodes=dead_nodes).run()
    for event in report.anomalies[:10]:
        problems.append(_anomaly_problem(plan, event))
    return problems


def degraded_validation_problems(
    plan: WashPlan,
    synthesis: SynthesisResult,
    dead_nodes: Mapping[str, int],
    uncovered: frozenset,
) -> Tuple[List[ValidationProblem], List[ValidationProblem]]:
    """Validation of a plan on a degraded chip: ``(problems, waived)``.

    The full gauntlet runs with the dead-node monitor armed, then
    cross-contamination at *reported-uncovered* wash targets is waived —
    those are the plan's declared coverage gaps, surfaced as ``DEGRADED``
    rows rather than failures.  Everything else (conflicts, dropped
    tasks, contamination at covered nodes, any route over a dead node)
    still fails the plan.
    """
    problems = validation_problems(plan, synthesis, dead_nodes=dead_nodes)
    real: List[ValidationProblem] = []
    waived: List[ValidationProblem] = []
    for problem in problems:
        if (
            problem.kind == SimEventKind.CROSS_CONTAMINATION.value
            and problem.node is not None
            and problem.node in uncovered
        ):
            waived.append(problem)
        else:
            real.append(problem)
    return real, waived


def validate_plan(
    plan: WashPlan,
    synthesis: SynthesisResult,
    degradation: Optional[object] = None,
) -> None:
    """Raise :class:`PlanValidationError` unless ``plan`` replays cleanly.

    ``degradation`` (a :class:`~repro.degrade.model.DegradationInfo`)
    switches to degraded validation: dead nodes are armed in the
    executor (so zero routes may traverse them) and contamination at the
    plan's reported-uncovered targets is waived but counted
    (``pdw_degrade_uncovered_violations_total``).  A *baseline* task
    (anything but a wash) caught traversing a statically-dead node means
    the assay itself cannot execute on this chip — that is proven
    infeasibility (:class:`~repro.errors.DegradedInfeasibleError`), not a
    planning bug.
    """
    with span("sim.validate", method=plan.method) as sp:
        if degradation is not None:
            dead_from = {node: -1 for node in degradation.dead}
            problems, waived = degraded_validation_problems(
                plan, synthesis, dead_from, frozenset(degradation.uncovered_targets)
            )
            sp.set("waived", len(waived))
            if waived:
                registry().counter(
                    "pdw_degrade_uncovered_violations_total", method=plan.method
                ).inc(len(waived))
            baseline_dead = [
                p
                for p in problems
                if p.kind == SimEventKind.DEAD_NODE_TRAVERSED.value
                and not p.task_id.startswith("wash:")
            ]
            if baseline_dead:
                raise DegradedInfeasibleError(
                    f"assay infeasible on degraded chip: {baseline_dead[0]}"
                    + (f" (+{len(baseline_dead) - 1} more)" if len(baseline_dead) > 1 else "")
                )
        else:
            problems = validation_problems(plan, synthesis)
        sp.set("problems", len(problems))
        registry().counter(
            "pdw_plan_validations_total",
            method=plan.method,
            outcome="fail" if problems else "ok",
        ).inc()
        if problems:
            raise PlanValidationError(plan.method, problems)
