"""Independent wash-plan validation by operational replay.

The optimizers each carry their own invariants (the ILP's constraints, the
sweep-line's timeline); this module trusts none of them.  Every emitted
:class:`~repro.core.plan.WashPlan` is replayed through the
:class:`~repro.sim.executor.ScheduleExecutor` and cross-checked
structurally, failing loudly on:

* **resource conflicts** — two tasks overlapping on a chip node,
* **execution anomalies** — any :class:`~repro.sim.events.SimEventKind`
  anomaly (cross-contamination, missing inputs/content, wrong ports,
  leftover content) raised while executing the schedule operationally,
* **dropped tasks** — a baseline task absent from the final schedule that
  no wash absorbed (ψ-integration is the only legal removal).

This is the safety net under the solver degradation ladder: a plan built
by a lower rung (branch-and-bound, greedy assembly) passes exactly the
same gauntlet as an optimal one.
"""

from __future__ import annotations

from typing import List

from repro.core.plan import WashPlan
from repro.errors import WashError
from repro.obs.metrics import registry
from repro.obs.trace import span
from repro.sim.executor import ScheduleExecutor
from repro.synth.synthesis import SynthesisResult


class PlanValidationError(WashError):
    """A wash plan failed independent validation.

    ``problems`` lists every violation found, not just the first.
    """

    def __init__(self, method: str, problems: List[str]):
        self.problems = list(problems)
        shown = "; ".join(self.problems[:5])
        more = f" (+{len(self.problems) - 5} more)" if len(self.problems) > 5 else ""
        super().__init__(f"{method} plan failed validation: {shown}{more}")


def validation_problems(plan: WashPlan, synthesis: SynthesisResult) -> List[str]:
    """All validation violations of ``plan``; empty when the plan is sound."""
    problems: List[str] = []

    for conflict in plan.schedule.conflicts()[:10]:
        problems.append(f"resource conflict: {conflict}")

    absorbed = {rm for w in plan.washes for rm in w.absorbed_removals}
    scheduled = {t.id for t in plan.schedule.tasks()}
    for task in plan.baseline_schedule.tasks():
        if task.id not in scheduled and task.id not in absorbed:
            problems.append(f"baseline task {task.id!r} dropped without absorption")

    report = ScheduleExecutor(synthesis, plan.schedule).run()
    for event in report.anomalies[:10]:
        problems.append(
            f"{event.kind.value} at t={event.time} ({event.task_id}): {event.detail}"
        )
    return problems


def validate_plan(plan: WashPlan, synthesis: SynthesisResult) -> None:
    """Raise :class:`PlanValidationError` unless ``plan`` replays cleanly."""
    with span("sim.validate", method=plan.method) as sp:
        problems = validation_problems(plan, synthesis)
        sp.set("problems", len(problems))
        registry().counter(
            "pdw_plan_validations_total",
            method=plan.method,
            outcome="fail" if problems else "ok",
        ).inc()
        if problems:
            raise PlanValidationError(plan.method, problems)
