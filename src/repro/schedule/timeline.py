"""Per-node occupancy timeline and earliest-fit queries.

Used by the list scheduler and by the DAWO sweep-line to answer: "when is
the earliest tick >= ready at which all nodes of this path are free for
``duration`` ticks?"
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import SchedulingError

Interval = Tuple[int, int]  # [start, end)


def intervals_overlap(a: Interval, b: Interval) -> bool:
    """Whether two half-open intervals intersect."""
    return a[0] < b[1] and b[0] < a[1]


class Timeline:
    """Busy intervals per chip node, with earliest-fit search."""

    def __init__(self) -> None:
        self._busy: Dict[str, List[Interval]] = {}

    # -- mutation -------------------------------------------------------------

    def occupy(self, nodes: Iterable[str], start: int, duration: int) -> None:
        """Mark ``nodes`` busy during ``[start, start + duration)``.

        Zero-duration occupations are ignored.
        """
        if start < 0 or duration < 0:
            raise SchedulingError(f"invalid occupation [{start}, +{duration})")
        if duration == 0:
            return
        interval = (start, start + duration)
        for node in nodes:
            insort(self._busy.setdefault(node, []), interval)

    # -- queries --------------------------------------------------------------

    def is_free(self, nodes: Iterable[str], start: int, duration: int) -> bool:
        """Whether all ``nodes`` are free during ``[start, start + duration)``."""
        if duration == 0:
            return True
        window = (start, start + duration)
        for node in nodes:
            for interval in self._busy.get(node, ()):
                if intervals_overlap(window, interval):
                    return False
                if interval[0] >= window[1]:
                    break
        return True

    def earliest_fit(
        self,
        nodes: Sequence[str],
        ready: int,
        duration: int,
        deadline: int | None = None,
    ) -> int | None:
        """Earliest ``t >= ready`` with all nodes free for ``duration`` ticks.

        Returns ``None`` if ``deadline`` is given and no slot finishes by it.
        The search jumps to the end of whichever busy interval caused a
        rejection, so it terminates in O(total intervals) steps.
        """
        if duration < 0:
            raise SchedulingError("duration cannot be negative")
        t = max(0, ready)
        if duration == 0:
            return t if deadline is None or t <= deadline else None
        while True:
            if deadline is not None and t + duration > deadline:
                return None
            blocker_end = self._first_conflict_end(nodes, t, duration)
            if blocker_end is None:
                return t
            t = blocker_end

    def _first_conflict_end(self, nodes: Sequence[str], start: int, duration: int) -> int | None:
        """End of the earliest busy interval blocking the window, or ``None``."""
        window = (start, start + duration)
        best: int | None = None
        for node in nodes:
            for interval in self._busy.get(node, ()):
                if intervals_overlap(window, interval):
                    if best is None or interval[1] < best:
                        best = interval[1]
                    break  # intervals sorted by start; first hit is earliest
                if interval[0] >= window[1]:
                    break
        return best

    def busy_intervals(self, node: str) -> List[Interval]:
        """Sorted busy intervals recorded for ``node``."""
        return list(self._busy.get(node, ()))

    def horizon(self) -> int:
        """Latest busy tick over all nodes (0 when empty)."""
        return max((iv[1] for ivs in self._busy.values() for iv in ivs), default=0)
