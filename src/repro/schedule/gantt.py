"""Text Gantt rendering of schedules, in the style of the paper's Fig. 2(b).

Each row is one resource lane (a device, or a flow-task lane); columns are
schedule ticks.  Used by the examples and handy when debugging wash plans.
"""

from __future__ import annotations

from typing import Dict, List

from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind

#: Lane fill glyph per task kind.
_GLYPHS = {
    TaskKind.OPERATION: "█",
    TaskKind.TRANSPORT: "▶",
    TaskKind.REMOVAL: "░",
    TaskKind.WASTE: "▒",
    TaskKind.WASH: "~",
}


def _lane_key(task: ScheduledTask) -> str:
    if task.kind is TaskKind.OPERATION:
        return f"dev {task.device}"
    return {
        TaskKind.TRANSPORT: "transport",
        TaskKind.REMOVAL: "removal",
        TaskKind.WASTE: "waste",
        TaskKind.WASH: "wash",
    }[task.kind]


def render_gantt(schedule: Schedule, width_limit: int = 120) -> str:
    """Render ``schedule`` as a fixed-width text chart.

    Flow tasks share one lane per kind; overlapping tasks in one lane are
    split onto numbered sub-lanes.  The chart is clipped at ``width_limit``
    ticks with an ellipsis marker.
    """
    makespan = schedule.makespan
    if makespan == 0:
        return "(empty schedule)\n"
    span = min(makespan, width_limit)
    clipped = makespan > width_limit

    lanes: Dict[str, List[List[ScheduledTask]]] = {}
    for task in schedule.tasks():
        sublanes = lanes.setdefault(_lane_key(task), [])
        for sublane in sublanes:
            if all(not task.overlaps_time(other) for other in sublane):
                sublane.append(task)
                break
        else:
            sublanes.append([task])

    label_width = max(len(name) for name in lanes) + 3
    lines = []
    header = " " * label_width + "".join(
        str(t % 10) if t % 5 == 0 else "·" for t in range(span)
    )
    lines.append(header + (" …" if clipped else ""))

    for name in sorted(lanes):
        for idx, sublane in enumerate(lanes[name]):
            label = name if idx == 0 else f"{name}+{idx}"
            row = [" "] * span
            for task in sublane:
                glyph = _GLYPHS[task.kind]
                for t in range(task.start, min(task.end, span)):
                    row[t] = glyph
            lines.append(f"{label:<{label_width}}" + "".join(row))

    lines.append(f"{'':<{label_width}}makespan = {makespan} s")
    return "\n".join(lines) + "\n"
