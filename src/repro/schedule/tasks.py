"""Task records shared by the scheduler and the wash optimizers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.arch.chip import FlowPath
from repro.errors import SchedulingError


class TaskKind(enum.Enum):
    """What a scheduled task does.

    ``OPERATION``
        A biochemical operation executing on a device (no flow path).
    ``TRANSPORT``
        A fluid transport :math:`p_{j,i,1}` — reagent injection, intermediate
        product move, or final product collection.
    ``REMOVAL``
        An excess-fluid removal :math:`p_{j,i,2}` after a transport [7].
    ``WASTE``
        A waste-fluid disposal flow (the ``$`` paths of Table I).
    ``WASH``
        A buffer wash flow along a wash path.
    """

    OPERATION = "operation"
    TRANSPORT = "transport"
    REMOVAL = "removal"
    WASTE = "waste"
    WASH = "wash"

    @property
    def is_flow(self) -> bool:
        """Whether tasks of this kind occupy a flow path."""
        return self is not TaskKind.OPERATION


@dataclass(frozen=True)
class ScheduledTask:
    """One scheduled activity.

    Attributes
    ----------
    id:
        Unique task id, e.g. ``"op:o3"``, ``"tr:o1->o3"``, ``"wash:w2"``.
    kind:
        The :class:`TaskKind`.
    start, duration:
        Schedule ticks (integer seconds); ``end`` is derived.
    path:
        Flow path for flow tasks; ``None`` for operations.
    device:
        Executing device for operations; also set on transports/removals to
        record which device the flow serves (useful for reporting).
    fluid_type:
        Contamination type of the carried fluid; ``None`` for wash buffer.
    edge:
        The sequencing-graph edge (producer id, consumer id) the task
        serves, when applicable.
    op_id:
        The operation an ``OPERATION`` task executes.
    """

    id: str
    kind: TaskKind
    start: int
    duration: int
    path: Optional[FlowPath] = None
    device: Optional[str] = None
    fluid_type: Optional[str] = None
    edge: Optional[Tuple[str, str]] = None
    op_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SchedulingError(f"task {self.id!r}: negative start {self.start}")
        if self.duration < 0:
            raise SchedulingError(f"task {self.id!r}: negative duration {self.duration}")
        if self.kind is TaskKind.OPERATION:
            if self.path is not None:
                raise SchedulingError(f"operation task {self.id!r} cannot carry a path")
            if self.device is None or self.op_id is None:
                raise SchedulingError(f"operation task {self.id!r} needs device and op_id")
        elif self.path is None or len(self.path) < 2:
            raise SchedulingError(f"flow task {self.id!r} needs a path of >= 2 nodes")

    @property
    def end(self) -> int:
        """Exclusive end tick."""
        return self.start + self.duration

    @property
    def occupied_nodes(self) -> Tuple[str, ...]:
        """Chip nodes the task occupies while running."""
        if self.kind is TaskKind.OPERATION:
            return (self.device,)  # type: ignore[return-value]
        return self.path  # type: ignore[return-value]

    def shifted(self, delta: int) -> "ScheduledTask":
        """A copy moved ``delta`` ticks (may be negative; start stays >= 0)."""
        return replace(self, start=self.start + delta)

    def at(self, start: int) -> "ScheduledTask":
        """A copy re-timed to begin at ``start``."""
        return replace(self, start=start)

    def overlaps_time(self, other: "ScheduledTask") -> bool:
        """Whether the two tasks' time intervals intersect."""
        return self.start < other.end and other.start < self.end

    def shares_nodes(self, other: "ScheduledTask") -> bool:
        """Whether the two tasks occupy at least one common chip node."""
        return bool(set(self.occupied_nodes) & set(other.occupied_nodes))

    def conflicts_with(self, other: "ScheduledTask") -> bool:
        """Resource conflict: common node and overlapping time (Eq. 8/19/20)."""
        return self.overlaps_time(other) and self.shares_nodes(other)
