"""The :class:`Schedule` container: a validated set of timed tasks."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.schedule.tasks import ScheduledTask, TaskKind


class Schedule:
    """An assay execution procedure: operations plus fluidic tasks.

    The container preserves insertion order, indexes tasks by id, and can
    check itself for the resource conflicts the formulation forbids
    (Eqs. 3, 8, 19, 20).
    """

    def __init__(self, tasks: Iterable[ScheduledTask] = ()):
        self._tasks: Dict[str, ScheduledTask] = {}
        for task in tasks:
            self.add(task)

    # -- mutation ---------------------------------------------------------------

    def add(self, task: ScheduledTask) -> None:
        """Add a task; ids must be unique."""
        if task.id in self._tasks:
            raise SchedulingError(f"duplicate task id {task.id!r}")
        self._tasks[task.id] = task

    def replace(self, task: ScheduledTask) -> None:
        """Replace the task with the same id (typically after re-timing)."""
        if task.id not in self._tasks:
            raise SchedulingError(f"cannot replace unknown task {task.id!r}")
        self._tasks[task.id] = task

    def remove(self, task_id: str) -> ScheduledTask:
        """Remove and return a task."""
        try:
            return self._tasks.pop(task_id)
        except KeyError:
            raise SchedulingError(f"cannot remove unknown task {task_id!r}") from None

    # -- access ------------------------------------------------------------------

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def get(self, task_id: str) -> ScheduledTask:
        """Task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise SchedulingError(f"unknown task {task_id!r}") from None

    def tasks(self, kind: Optional[TaskKind] = None) -> List[ScheduledTask]:
        """All tasks, optionally filtered by kind, in start-time order."""
        selected = (
            t for t in self._tasks.values() if kind is None or t.kind is kind
        )
        return sorted(selected, key=lambda t: (t.start, t.id))

    def operations(self) -> List[ScheduledTask]:
        """All biochemical operation tasks."""
        return self.tasks(TaskKind.OPERATION)

    def flow_tasks(self) -> List[ScheduledTask]:
        """All tasks that occupy flow paths."""
        return [t for t in self.tasks() if t.kind.is_flow]

    def operation_task(self, op_id: str) -> ScheduledTask:
        """The OPERATION task executing sequencing-graph node ``op_id``."""
        for task in self._tasks.values():
            if task.kind is TaskKind.OPERATION and task.op_id == op_id:
                return task
        raise SchedulingError(f"no operation task for {op_id!r}")

    # -- metrics ------------------------------------------------------------------

    @property
    def makespan(self) -> int:
        """Completion time of the whole schedule (:math:`T_{assay}`)."""
        return max((t.end for t in self._tasks.values()), default=0)

    def operation_completion(self) -> int:
        """Completion time of the last biochemical operation."""
        return max((t.end for t in self.operations()), default=0)

    # -- validation ---------------------------------------------------------------

    def conflicts(self) -> List[Tuple[str, str]]:
        """Pairs of task ids that overlap in time on a shared chip node.

        Wash tasks are buffer flows, so a wash/flow overlap is still a
        conflict (Eq. 19); only an excess-removal that has been *absorbed*
        into a wash (and therefore removed from the schedule) escapes it.
        """
        ordered = self.tasks()
        bad: List[Tuple[str, str]] = []
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if b.start >= a.end:
                    break
                if a.conflicts_with(b):
                    bad.append((a.id, b.id))
        return bad

    def validate(self, dependencies: Iterable[Tuple[str, str]] = ()) -> None:
        """Raise on any resource conflict or violated (task-id) precedence.

        ``dependencies`` are (earlier_task_id, later_task_id) pairs that
        must satisfy ``end(earlier) <= start(later)``.
        """
        bad = self.conflicts()
        if bad:
            raise SchedulingError(f"resource conflicts: {bad[:5]}")
        for before, after in dependencies:
            if self.get(before).end > self.get(after).start:
                raise SchedulingError(
                    f"precedence violated: {before!r} ends at {self.get(before).end}"
                    f" but {after!r} starts at {self.get(after).start}"
                )

    # -- transforms -----------------------------------------------------------------

    def mapped(self, fn: Callable[[ScheduledTask], ScheduledTask]) -> "Schedule":
        """A new schedule with ``fn`` applied to every task."""
        return Schedule(fn(t) for t in self._tasks.values())

    def copy(self) -> "Schedule":
        """A shallow copy (tasks are immutable)."""
        return Schedule(self._tasks.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = {}
        for t in self._tasks.values():
            kinds[t.kind.value] = kinds.get(t.kind.value, 0) + 1
        return f"Schedule({len(self)} tasks, makespan={self.makespan}, {kinds})"
