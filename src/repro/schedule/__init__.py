"""Schedule substrate: task records, timelines and conflict detection.

The synthesis flow (:mod:`repro.synth`) produces a :class:`Schedule` of
biochemical operations, fluid transport tasks (:math:`p_{j,i,1}`), excess
removal tasks (:math:`p_{j,i,2}`) and waste disposal flows; the wash
optimizers (:mod:`repro.core`, :mod:`repro.baselines`) extend it with wash
tasks and re-time everything.  :class:`Timeline` answers the occupancy
queries both need: which chip nodes are busy when, and where the earliest
conflict-free slot for a new flow is.
"""

from repro.schedule.tasks import ScheduledTask, TaskKind
from repro.schedule.timeline import Timeline, intervals_overlap
from repro.schedule.schedule import Schedule
from repro.schedule.gantt import render_gantt

__all__ = [
    "Schedule",
    "ScheduledTask",
    "TaskKind",
    "Timeline",
    "intervals_overlap",
    "render_gantt",
]
