"""Micro-benchmarks of the substrate components.

These measure the building blocks the paper's runtime depends on — ILP
solving, routing, synthesis, contamination analysis — with proper
multi-round statistics (unlike the one-shot pipeline benches).

Run with::

    pytest benchmarks/bench_components.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.arch import Router, figure2_chip
from repro.bench import benchmark as bench_spec
from repro.bench import load_benchmark
from repro.contam import ContaminationTracker, wash_requirements
from repro.core.path_ilp import exact_wash_path
from repro.ilp import BranchAndBoundSolver, LinExpr, Model
from repro.synth import synthesize


def knapsack_model(n=12):
    m = Model("knapsack")
    xs = [m.add_binary_var(f"x{i}") for i in range(n)]
    weights = [(7 * i) % 13 + 1 for i in range(n)]
    values = [(5 * i) % 11 + 1 for i in range(n)]
    m.add_constr(LinExpr.sum(w * x for w, x in zip(weights, xs)) <= 3 * n)
    m.set_objective(LinExpr.sum(v * x for v, x in zip(values, xs)), sense="max")
    return m


class TestIlpBenchmarks:
    def test_highs_knapsack(self, benchmark):
        result = benchmark(lambda: knapsack_model().solve())
        assert result.status.has_solution

    def test_branch_and_bound_knapsack(self, benchmark):
        solver = BranchAndBoundSolver(time_limit_s=30)
        result = benchmark(lambda: solver(knapsack_model(8)))
        assert result.status.has_solution

    def test_exact_wash_path_ilp(self, benchmark):
        chip = figure2_chip()
        path = benchmark(lambda: exact_wash_path(chip, ["s12", "s13", "s16"]))
        assert len(path) >= 5


class TestRoutingBenchmarks:
    def test_shortest_path(self, benchmark):
        router = Router(figure2_chip())
        path = benchmark(lambda: router.shortest_path("in1", "out4"))
        assert path[0] == "in1"

    def test_covering_path(self, benchmark):
        router = Router(figure2_chip())
        path = benchmark(
            lambda: router.path_through("in4", ["s16", "s12", "s13"], "out4")
        )
        assert {"s16", "s12", "s13"} <= set(path)

    def test_candidate_pool(self, benchmark):
        from repro.core.pathgen import candidate_paths

        chip = figure2_chip()
        pool = benchmark(lambda: candidate_paths(chip, ["s3", "s4"], 6))
        assert pool


class TestSynthesisBenchmarks:
    @pytest.mark.parametrize("name", ["PCR", "Kinase-act-2"])
    def test_synthesis(self, benchmark, name):
        spec = bench_spec(name)
        assay = load_benchmark(name)
        result = benchmark.pedantic(
            lambda: synthesize(assay, inventory=spec.inventory),
            rounds=3, iterations=1,
        )
        assert result.schedule.makespan > 0

    def test_contamination_analysis(self, benchmark):
        spec = bench_spec("IVD")
        synthesis = synthesize(load_benchmark("IVD"), inventory=spec.inventory)

        def analyze():
            tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
            return wash_requirements(tracker, synthesis.assay)

        report = benchmark(analyze)
        assert report.required
