"""Decomposition-gap bench.

DESIGN.md fixes the relative order of node-sharing baseline tasks inside
the scheduling MILP.  This bench solves the free-ordering relaxation
(:mod:`repro.core.monolithic`) next to the decomposed model and reports the
objective gap the decomposition concedes — the empirical justification for
the design choice.

Run with::

    pytest benchmarks/bench_decomposition.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench import benchmark as bench_spec
from repro.bench import load_benchmark
from repro.contam import ContaminationTracker, NecessityPolicy, wash_requirements
from repro.core import PDWConfig
from repro.core.monolithic import objective_lower_bound
from repro.core.pathgen import candidate_paths
from repro.core.targets import cluster_requirements
from repro.synth import synthesize

_CFG = PDWConfig(time_limit_s=60.0)


@pytest.mark.parametrize("name", ["PCR", "Kinase-act-1"])
def test_decomposition_gap(benchmark, name, capsys):
    spec = bench_spec(name)
    synthesis = synthesize(load_benchmark(name), inventory=spec.inventory)
    tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
    report = wash_requirements(tracker, synthesis.assay, NecessityPolicy.PDW)
    clusters = cluster_requirements(
        synthesis.chip, report.required, max_path_mm=_CFG.max_wash_path_mm
    )
    candidates = {
        c.id: candidate_paths(synthesis.chip, sorted(c.targets), _CFG.max_candidates)
        for c in clusters
    }

    cmp = benchmark.pedantic(
        lambda: objective_lower_bound(
            synthesis.chip, synthesis.schedule, clusters, candidates, _CFG
        ),
        rounds=1, iterations=1,
    )
    assert cmp.relaxed_bound <= cmp.decomposed_objective + 1e-6
    benchmark.extra_info["gap_percent"] = round(cmp.gap_percent, 2)
    with capsys.disabled():
        print(
            f"\n{name}: decomposed={cmp.decomposed_objective:.2f} "
            f"relaxed-bound={cmp.relaxed_bound:.2f} "
            f"gap={cmp.gap_percent:.2f}%"
        )
