"""Scalability bench: PDW runtime and quality versus assay size.

The paper caps each benchmark run at 15 minutes; this bench sweeps
synthetic assays from 5 to 25 operations and records how the scheduling
MILP scales, confirming the decomposition keeps solve times far inside the
budget.

Run with::

    pytest benchmarks/bench_scalability.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench.synthetic import synthetic_assay
from repro.core import PDWConfig, optimize_washes
from repro.synth import synthesize

#: (n_ops, n_edges, seed)
SIZES = [(5, 9, 11), (10, 16, 22), (15, 24, 33), (20, 30, 44)]

_CFG = PDWConfig(time_limit_s=120.0)


@pytest.mark.parametrize("n_ops, n_edges, seed", SIZES)
def test_pdw_scaling(benchmark, n_ops, n_edges, seed):
    assay = synthetic_assay(f"scale{n_ops}", n_ops, n_edges, seed)
    synthesis = synthesize(assay)

    plan = benchmark.pedantic(
        lambda: optimize_washes(synthesis, _CFG), rounds=1, iterations=1
    )
    assert plan.solver_status in ("optimal", "feasible")
    assert plan.t_delay >= 0
    benchmark.extra_info.update(
        {
            "n_ops": n_ops,
            "solver_status": plan.solver_status,
            "ilp_solve_s": round(plan.solve_time_s, 2),
            "n_wash": plan.n_wash,
        }
    )
