"""Motivating-example bench (Fig. 2 / Fig. 3 / Table I analog).

Runs the paper's seven-operation example assay on the exact Fig. 2 chip and
checks the Fig. 3 qualities: only a few wash operations, executed
concurrently with other fluidic tasks, with a completion-time penalty of at
most a few seconds.

Run with::

    pytest benchmarks/bench_motivating.py --benchmark-only -s
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.arch import figure2_chip
from repro.arch.presets import FIGURE2_FLOW_PATHS
from repro.core import PDWConfig, optimize_washes
from repro.synth import synthesize

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "examples"))
from motivating_example import BINDING, REAGENT_PORTS, build_figure1_assay  # noqa: E402


def test_motivating_example(benchmark, capsys):
    def pipeline():
        synthesis = synthesize(
            build_figure1_assay(),
            chip=figure2_chip(),
            binding=BINDING,
            reagent_ports=REAGENT_PORTS,
        )
        return synthesis, optimize_washes(synthesis, PDWConfig(time_limit_s=60.0))

    synthesis, plan = benchmark.pedantic(pipeline, rounds=1, iterations=1)

    chip = synthesis.chip
    for path in FIGURE2_FLOW_PATHS.values():
        chip.check_path(path)  # Table I reproduction
    assert 1 <= plan.n_wash <= 4       # Fig. 3 uses three washes
    assert plan.t_delay <= 3           # Fig. 3: one second of delay

    with capsys.disabled():
        print()
        print(f"baseline completion: {synthesis.baseline_makespan} s "
              f"(paper: 30 s)")
        print(f"PDW: {plan.n_wash} washes, delay {plan.t_delay} s "
              f"(paper Fig. 3: 3 washes, 1 s)")
        for wash in plan.washes:
            print(f"  {wash.id}: {' -> '.join(wash.path)}")
