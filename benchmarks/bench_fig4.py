"""Fig. 4 regeneration bench: average waiting time of biochemical operations.

Run with::

    pytest benchmarks/bench_fig4.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.fig4 import fig4_report, fig4_series
from repro.experiments.runner import run_suite
from benchmarks.conftest import BENCH_CONFIG


def test_fig4_series(benchmark, capsys):
    runs = run_suite(config=BENCH_CONFIG)
    series = benchmark.pedantic(lambda: fig4_series(runs), rounds=3, iterations=1)
    # PDW's optimized time windows keep operations waiting less than
    # DAWO's sweep-line insertion on every benchmark.
    for dawo, pdw in zip(series["DAWO"], series["PDW"]):
        assert pdw <= dawo
    with capsys.disabled():
        print()
        print(fig4_report(config=BENCH_CONFIG))
