"""Necessity-analysis bench: the Section II-A claim, quantified.

Prints the contamination-event classification table for the whole suite
and asserts the headline: only a small minority of contaminated spots
actually require washing.

Run with::

    pytest benchmarks/bench_necessity.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.necessity_stats import necessity_report, necessity_rows


def test_necessity_statistics(benchmark, capsys):
    rows = benchmark.pedantic(necessity_rows, rounds=1, iterations=1)
    total_events = sum(r.events for r in rows)
    total_required = sum(r.required for r in rows)
    # Across the whole suite, well under a quarter of contamination
    # events need a wash — the motivation for contribution 1.
    assert total_required / total_events < 0.25
    with capsys.disabled():
        print()
        print(necessity_report())
