"""Fig. 5 regeneration bench: total wash time.

Run with::

    pytest benchmarks/bench_fig5.py --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.fig5 import fig5_report, fig5_series
from repro.experiments.runner import run_suite
from benchmarks.conftest import BENCH_CONFIG


def test_fig5_series(benchmark, capsys):
    runs = run_suite(config=BENCH_CONFIG)
    series = benchmark.pedantic(lambda: fig5_series(runs), rounds=3, iterations=1)
    # Fewer washes over shorter paths (Eq. 17) mean less cumulative wash
    # time for PDW on every benchmark.
    for dawo, pdw in zip(series["DAWO"], series["PDW"]):
        assert pdw <= dawo
    with capsys.disabled():
        print()
        print(fig5_report(config=BENCH_CONFIG))
