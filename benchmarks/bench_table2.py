"""Table II regeneration bench.

One bench per Table II row: runs the full pipeline (synthesis, DAWO, PDW)
on that benchmark, asserts the paper's qualitative result (PDW no worse on
every metric) and records the wall time.  The final bench prints the
complete measured table side by side with the paper's improvement
percentages.

Run with::

    pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench import benchmark_names
from repro.experiments.runner import run_benchmark
from repro.experiments.table2 import table2_report
from benchmarks.conftest import BENCH_CONFIG


@pytest.mark.parametrize("name", benchmark_names())
def test_table2_row(benchmark, name):
    """Pipeline runtime and PDW-vs-DAWO dominance for one benchmark."""
    run = benchmark.pedantic(
        lambda: run_benchmark(name, BENCH_CONFIG), rounds=1, iterations=1
    )
    assert run.pdw.solver_status in ("optimal", "feasible")
    assert run.pdw.n_wash <= run.dawo.n_wash
    assert run.pdw.l_wash_mm <= run.dawo.l_wash_mm
    assert run.pdw.t_delay <= run.dawo.t_delay
    assert run.pdw.t_assay <= run.dawo.t_assay
    benchmark.extra_info.update(
        {f"dawo_{k}": v for k, v in run.dawo.metrics().items()}
    )
    benchmark.extra_info.update(
        {f"pdw_{k}": v for k, v in run.pdw.metrics().items()}
    )


def test_table2_report(benchmark, capsys):
    """Assemble and print the full Table II (rows come from the cache)."""
    text = benchmark.pedantic(
        lambda: table2_report(config=BENCH_CONFIG), rounds=1, iterations=1
    )
    assert text.count("\n") >= 10
    with capsys.disabled():
        print()
        print(text)
