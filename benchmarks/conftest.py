"""Shared configuration for the benchmark harness.

Every bench uses one PDW configuration (the paper's weights, a 120 s solver
budget per benchmark — the paper allowed 15 minutes) and shares the
experiment runner's in-process cache, so each Table II benchmark is
synthesized and optimized exactly once per pytest session no matter how
many benches consume it.
"""

from __future__ import annotations

import pytest

from repro.core import PDWConfig

#: Solver budget per benchmark; the paper's best-effort cap is 15 minutes.
BENCH_CONFIG = PDWConfig(time_limit_s=120.0)


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Redirect the on-disk artifact cache to a per-session tmp dir.

    Benches must measure real solver work; a warm cache left over from a
    previous run (or the user's interactive sessions) would skew timings.
    """
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("bench-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def bench_config() -> PDWConfig:
    return BENCH_CONFIG
