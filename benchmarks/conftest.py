"""Shared configuration for the benchmark harness.

Every bench uses one PDW configuration (the paper's weights, a 120 s solver
budget per benchmark — the paper allowed 15 minutes) and shares the
experiment runner's in-process cache, so each Table II benchmark is
synthesized and optimized exactly once per pytest session no matter how
many benches consume it.
"""

from __future__ import annotations

import pytest

from repro.core import PDWConfig

#: Solver budget per benchmark; the paper's best-effort cap is 15 minutes.
BENCH_CONFIG = PDWConfig(time_limit_s=120.0)


@pytest.fixture(scope="session")
def bench_config() -> PDWConfig:
    return BENCH_CONFIG
