"""Ablation bench: contribution of each PDW technique.

Quantifies the three Section II contributions separately — necessity
analysis (II-A), removal integration (II-B), path/operation sharing and
optimized time windows (II-C) — by disabling one at a time on a small,
medium and synthetic benchmark.

Run with::

    pytest benchmarks/bench_ablation.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core import PDWConfig
from repro.experiments.ablation import (
    DEFAULT_ABLATION_BENCHMARKS,
    ablation_report,
    run_ablation,
)

_CFG = PDWConfig(time_limit_s=60.0)


@pytest.mark.parametrize("name", DEFAULT_ABLATION_BENCHMARKS)
def test_ablation_benchmark(benchmark, name):
    plans = benchmark.pedantic(
        lambda: run_ablation(name, _CFG), rounds=1, iterations=1
    )
    full = plans["full"]
    # Disabling necessity analysis can only add washes.
    assert full.n_wash <= plans["no-necessity"].n_wash
    # Disabling merging can only add washes.
    assert full.n_wash <= plans["no-merge"].n_wash
    # Eager washes can only delay the assay further.
    assert full.t_assay <= plans["eager"].t_assay
    # The no-integration variant folds nothing.
    assert plans["no-integration"].integrated_removals == 0
    benchmark.extra_info.update(
        {variant: plan.metrics() for variant, plan in plans.items()}
    )


def test_ablation_report(benchmark, capsys):
    text = benchmark.pedantic(
        lambda: ablation_report(base=_CFG), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(text)
