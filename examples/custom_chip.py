#!/usr/bin/env python3
"""Build a custom chip architecture and optimize a user-defined assay on it.

Demonstrates the public architecture API: describing a hand-designed flow
network with :class:`~repro.arch.builder.ChipBuilder` (two mixers, one
detector, a small channel ladder), binding an enzymatic assay onto it, and
running PathDriver-Wash.

Usage::

    python examples/custom_chip.py
"""

from repro import (
    ChipBuilder,
    DeviceKind,
    Operation,
    PDWConfig,
    Reagent,
    SequencingGraph,
    optimize_washes,
    render_gantt,
    synthesize,
)


def build_custom_chip():
    """A hand-routed ladder chip: two mixers and one detector.

    ::

        in1 - a1 - mixerA - a2 - b2 - out1
               |              |
        in2 - b1 - mixerB --- c1 - detX - c2 - out2
    """
    b = ChipBuilder("custom-ladder")
    b.add_flow_port("in1", pos=(0, 0)).add_flow_port("in2", pos=(0, 2))
    b.add_waste_port("out1", pos=(6, 0)).add_waste_port("out2", pos=(6, 2))
    b.add_device("mixerA", DeviceKind.MIXER, pos=(2, 0))
    b.add_device("mixerB", DeviceKind.MIXER, pos=(2, 2))
    b.add_device("detX", DeviceKind.DETECTOR, pos=(4, 2))
    b.add_junction("a1", pos=(1, 0)).add_junction("a2", pos=(3, 0))
    b.add_junction("b1", pos=(1, 2)).add_junction("b2", pos=(4, 0))
    b.add_junction("c1", pos=(3, 2)).add_junction("c2", pos=(5, 2))
    b.connect("in1", "a1", "mixerA", "a2", "b2", "out1")
    b.connect("in2", "b1", "mixerB", "c1", "detX", "c2", "out2")
    b.add_channel("a1", "b1")
    b.add_channel("a2", "c1")
    return b.build()


def build_enzyme_assay() -> SequencingGraph:
    """Two enzyme-kinetics batches sharing the same devices.

    The second batch reuses the channels the first batch contaminated, so
    wash operations are genuinely required between them.
    """
    g = SequencingGraph("enzyme-kinetics")
    g.add_reagent(Reagent("enzyme", "enzyme-stock"))
    g.add_reagent(Reagent("sub1", "substrate-1"))
    g.add_reagent(Reagent("sub2", "substrate-2"))
    g.add_reagent(Reagent("inhib", "inhibitor"))
    g.add_operation(Operation("mix1", "mix"), ["enzyme", "sub1"])
    g.add_operation(Operation("mix2", "mix"), ["mix1", "sub2"])
    g.add_operation(Operation("read1", "detect"), ["mix2"])
    g.add_operation(Operation("mix3", "mix"), ["enzyme", "inhib"])
    g.add_operation(Operation("mix4", "mix"), ["mix3", "sub2"])
    g.add_operation(Operation("read2", "detect"), ["mix4"])
    return g


def main() -> None:
    chip = build_custom_chip()
    print(f"custom chip: {chip}")
    print(f"  stats: {chip.stats()}")

    assay = build_enzyme_assay()
    binding = {
        "mix1": "mixerA", "mix2": "mixerB", "read1": "detX",
        "mix3": "mixerA", "mix4": "mixerB", "read2": "detX",
    }
    synthesis = synthesize(assay, chip=chip, binding=binding)
    print(f"  baseline completion: {synthesis.baseline_makespan} s")

    plan = optimize_washes(synthesis, PDWConfig(time_limit_s=30.0))
    print(f"  PDW: {plan.n_wash} washes, {plan.l_wash_mm:.1f} mm, "
          f"delay {plan.t_delay} s ({plan.solver_status})")
    for wash in plan.washes:
        print(f"    {wash.id}: {' -> '.join(wash.path)}")
    print()
    print(render_gantt(plan.schedule))


if __name__ == "__main__":
    main()
