#!/usr/bin/env python3
"""Sweep the Eq. 26 objective weights and the wash-path cap.

Shows how the trade-off between wash-operation count, wash-path length and
assay completion time responds to the α/β/γ weights, and how the physical
cap on a single wash flush controls cluster merging.

Usage::

    python examples/weight_sweep.py [benchmark-name]
"""

import sys
from dataclasses import replace

from repro import PDWConfig, benchmark, load_benchmark, optimize_washes, synthesize

#: (label, alpha, beta, gamma)
WEIGHTS = [
    ("paper (.3/.3/.4)", 0.3, 0.3, 0.4),
    ("count-heavy", 1.0, 0.1, 0.1),
    ("length-heavy", 0.1, 1.0, 0.1),
    ("time-heavy", 0.1, 0.1, 1.0),
]

CAPS_MM = [15.0, 33.0, 100.0]


def main(argv=None) -> None:
    args = sys.argv[1:] if argv is None else argv
    name = args[0] if args else "PCR"
    spec = benchmark(name)
    synthesis = synthesize(load_benchmark(name), inventory=spec.inventory)
    base = PDWConfig(time_limit_s=60.0)

    print(f"benchmark {name}; baseline completion {synthesis.baseline_makespan} s\n")
    header = f"{'configuration':<22}{'N_wash':>8}{'L_wash':>10}{'T_delay':>9}{'T_assay':>9}"
    print(header)
    print("-" * len(header))

    for label, alpha, beta, gamma in WEIGHTS:
        cfg = replace(base, alpha=alpha, beta=beta, gamma=gamma)
        plan = optimize_washes(synthesis, cfg)
        m = plan.metrics()
        print(f"{label:<22}{m['n_wash']:>8g}{m['l_wash_mm']:>10.1f}"
              f"{m['t_delay_s']:>9g}{m['t_assay_s']:>9g}")

    print()
    print("single-flush cap sweep (paper weights):")
    for cap in CAPS_MM:
        cfg = replace(base, max_wash_path_mm=cap)
        plan = optimize_washes(synthesis, cfg)
        m = plan.metrics()
        print(f"  cap {cap:6.1f} mm -> N={m['n_wash']:g}  "
              f"L={m['l_wash_mm']:.1f} mm  T_assay={m['t_assay_s']:g} s")


if __name__ == "__main__":
    main()
