#!/usr/bin/env python3
"""Quickstart: optimize the washes of the PCR benchmark.

Runs the full pipeline on the paper's smallest real-life benchmark:

1. load the PCR sequencing graph (7 mixing operations over 8 reagents),
2. synthesize a chip architecture and a wash-free baseline schedule,
3. run PathDriver-Wash and print the resulting wash plan,
4. show the wash-aware schedule as a text Gantt chart.

Usage::

    python examples/quickstart.py
"""

from repro import (
    PDWConfig,
    benchmark,
    load_benchmark,
    optimize_washes,
    render_chip,
    render_gantt,
    synthesize,
)


def main() -> None:
    spec = benchmark("PCR")
    assay = load_benchmark("PCR")
    print(f"assay: {assay.name}  |O|={assay.operation_count}  |E|={assay.edge_count}")

    synthesis = synthesize(assay, inventory=spec.inventory)
    print(f"chip:  {synthesis.chip}")
    print(f"baseline (wash-free) completion: {synthesis.baseline_makespan} s")
    print()
    print(render_chip(synthesis.chip))

    plan = optimize_washes(synthesis, PDWConfig(time_limit_s=60.0))
    print(f"PDW solver status: {plan.solver_status}")
    for key, value in plan.metrics().items():
        print(f"  {key:<22}{value:g}")
    print()
    for wash in plan.washes:
        print(
            f"  wash {wash.id}: t=[{wash.start}, {wash.end}) s, "
            f"targets {sorted(wash.targets)}"
        )
        print(f"    path: {' -> '.join(wash.path)}")
        if wash.absorbed_removals:
            print(f"    absorbs excess removals: {', '.join(wash.absorbed_removals)}")
    print()
    print(render_gantt(plan.schedule))


if __name__ == "__main__":
    main()
