#!/usr/bin/env python3
"""Compare PDW against the DAWO and IMMEDIATE baselines on one benchmark.

Reproduces one row of Table II plus the Fig. 4 / Fig. 5 data points for the
IVD diagnostics benchmark, and prints the necessity-analysis breakdown that
drives PDW's advantage.

Usage::

    python examples/method_comparison.py [benchmark-name]
"""

import sys

from repro import (
    ContaminationTracker,
    NecessityPolicy,
    PDWConfig,
    benchmark,
    dawo_plan,
    immediate_wash_plan,
    load_benchmark,
    optimize_washes,
    synthesize,
    wash_requirements,
)


def main(argv=None) -> None:
    args = sys.argv[1:] if argv is None else argv
    name = args[0] if args else "IVD"
    spec = benchmark(name)
    assay = load_benchmark(name)
    synthesis = synthesize(assay, inventory=spec.inventory)
    print(f"benchmark {name}: |O|={assay.operation_count} "
          f"|D|={spec.device_total} |E|={assay.edge_count}")
    print(f"baseline (wash-free) completion: {synthesis.baseline_makespan} s\n")

    tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
    report = wash_requirements(tracker, assay, NecessityPolicy.PDW)
    print(f"necessity analysis: {report.summary()}\n")

    plans = {
        "PDW": optimize_washes(synthesis, PDWConfig(time_limit_s=90.0)),
        "DAWO": dawo_plan(synthesis),
        "IMMEDIATE": immediate_wash_plan(synthesis),
    }

    metrics = list(next(iter(plans.values())).metrics())
    header = f"{'metric':<24}" + "".join(f"{m:>12}" for m in plans)
    print(header)
    print("-" * len(header))
    for key in metrics:
        row = f"{key:<24}"
        for plan in plans.values():
            row += f"{plan.metrics()[key]:>12g}"
        print(row)

    print()
    dawo, pdw = plans["DAWO"], plans["PDW"]
    for key, label in [
        ("n_wash", "N_wash"), ("l_wash_mm", "L_wash"),
        ("t_delay_s", "T_delay"), ("t_assay_s", "T_assay"),
    ]:
        d, p = dawo.metrics()[key], pdw.metrics()[key]
        imp = 100.0 * (d - p) / d if d else 0.0
        print(f"PDW improvement on {label:<8}: {imp:6.2f} %")


if __name__ == "__main__":
    main()
