#!/usr/bin/env python3
"""The paper's motivating example (Fig. 1(c) / Fig. 2 / Fig. 3 / Table I).

Rebuilds the example bioassay — two input reagents processed by seven
biochemical operations — on the exact Fig. 2 chip architecture (five
devices, sixteen channel switches, four flow and four waste ports), with
the paper's operation-to-device binding, then compares DAWO against PDW.

The assay structure is reconstructed from the narrative of Section II:

* ``o1`` filters reagent 1 (device *filter*),
* ``o2`` mixes the filtrate with reagent 2 (device *mixer*),
* ``o3`` examines the filtrate on *detector 1*; its product is then
  heated by ``o5`` (*heater*),
* ``o4`` examines the mixture of ``o2`` on *detector 2*,
* ``o6`` merges the results of ``o4`` and ``o5`` in the *mixer*,
* ``o7`` performs the final detection.

Usage::

    python examples/motivating_example.py
"""

from repro import (
    Operation,
    PDWConfig,
    Reagent,
    SequencingGraph,
    dawo_plan,
    figure2_chip,
    optimize_washes,
    render_chip,
    render_gantt,
    synthesize,
)
from repro.arch.presets import FIGURE2_FLOW_PATHS


def build_figure1_assay() -> SequencingGraph:
    """The sequencing graph of Fig. 1(c) as reconstructed above."""
    g = SequencingGraph("figure1c")
    g.add_reagent(Reagent("r1", "sample"))
    g.add_reagent(Reagent("r2", "luminescence-agent"))
    g.add_operation(Operation("o1", "filter", 3), ["r1"])
    g.add_operation(Operation("o2", "mix", 5), ["o1", "r2"])
    g.add_operation(Operation("o3", "detect", 4), ["o1"])
    g.add_operation(Operation("o4", "detect", 4), ["o2"])
    g.add_operation(Operation("o5", "heat", 4), ["o3"])
    g.add_operation(Operation("o6", "mix", 5), ["o4", "o5"])
    g.add_operation(Operation("o7", "detect", 4), ["o6"])
    return g


#: The paper's binding (Fig. 2(b)).
BINDING = {
    "o1": "filter",
    "o2": "mixer",
    "o3": "det1",
    "o4": "det2",
    "o5": "heater",
    "o6": "mixer",
    "o7": "det1",
}

#: Reagent injections as in Table I (r1 from in1, r2 from in2).
REAGENT_PORTS = {"r1": "in1", "r2": "in2"}


def main() -> None:
    chip = figure2_chip()
    print(render_chip(chip))

    print("Table I transport paths are valid walks on the reconstruction:")
    for name in ("#1", "#2", "#6", "w3"):
        path = FIGURE2_FLOW_PATHS[name]
        chip.check_path(path)
        print(f"  {name}: {' -> '.join(path)}")
    print()

    assay = build_figure1_assay()
    synthesis = synthesize(
        assay, chip=chip, binding=BINDING, reagent_ports=REAGENT_PORTS
    )
    print(f"wash-free baseline completes in {synthesis.baseline_makespan} s")
    print()

    dawo = dawo_plan(synthesis)
    pdw = optimize_washes(synthesis, PDWConfig(time_limit_s=60.0))
    header = f"{'metric':<24}{'DAWO':>10}{'PDW':>10}"
    print(header)
    print("-" * len(header))
    for key in dawo.metrics():
        print(f"{key:<24}{dawo.metrics()[key]:>10g}{pdw.metrics()[key]:>10g}")
    print()
    print("PDW wash operations (compare with Fig. 3's three washes):")
    for wash in pdw.washes:
        print(f"  {wash.id}: [{wash.start}, {wash.end}) s  {' -> '.join(wash.path)}")
    print()
    print(render_gantt(pdw.schedule))


if __name__ == "__main__":
    main()
